//! Fault sets and restricted graph views.
//!
//! The constructions of the paper constantly work in subgraphs of `G`
//! obtained by removing a few failed edges (`G ∖ F`), removing the interior
//! of a shortest-path segment (`G(u_k, u_ℓ)` of Eq. (3)), removing a detour
//! suffix (`G_D(w_ℓ)` of Eq. (4)), or replacing the edges incident to a
//! vertex by a chosen subset (`G_{τ-1}(v)` in step (3) of `Cons2FTBFS`).
//! Two representations are provided, both consumed by the searches through
//! the [`Restriction`] trait:
//!
//! * [`GraphView`] — an owned, cheap-to-clone overlay backed by hash sets.
//!   Convenient for one-off restrictions, tests and verification code.
//! * [`ViewOverlay`] — a reusable, *epoch-stamped* scratch overlay backed by
//!   dense per-vertex/per-edge stamp arrays.  Resetting it for a new
//!   restriction ([`ViewOverlay::begin`]) is `O(1)`: the epoch counter is
//!   bumped and every stale stamp instantly stops matching, so the millions
//!   of restricted views built inside the `Cons2FTBFS` binary-search
//!   predicates allocate nothing after the first use.
//!
//! # Epoch-stamping invariants
//!
//! A vertex (edge) is removed from the overlay's current restriction iff its
//! stamp equals the overlay's current epoch.  `begin` increments the epoch,
//! which implicitly clears every mark from earlier restrictions; stamps are
//! `u64`, so the counter never wraps in practice.  The same invariant is used
//! by [`crate::workspace::SearchWorkspace`] for its distance/parent arrays.

use crate::graph::{EdgeId, Graph, VertexId};
use std::collections::HashSet;
use std::fmt;

/// A restriction of a [`Graph`] to a subgraph, as consulted by the searches
/// (`bfs`, `dijkstra`, [`crate::workspace::SearchWorkspace`]).
///
/// Implementations must be consistent: [`Restriction::allows_edge`] must
/// return `false` whenever either endpoint of the edge is disallowed, so that
/// search loops only need the edge check on top of the adjacency lists of
/// [`Restriction::base_graph`].
pub trait Restriction {
    /// The underlying unrestricted graph.
    fn base_graph(&self) -> &Graph;

    /// Returns `true` if vertex `v` is present in the restriction.
    fn allows_vertex(&self, v: VertexId) -> bool;

    /// Returns `true` if edge `e` is present in the restriction (both
    /// endpoints present and the edge itself not removed).
    fn allows_edge(&self, e: EdgeId) -> bool;

    /// Number of vertices of the underlying graph (including removed ones;
    /// removed vertices simply have no surviving incident edges).
    fn vertex_bound(&self) -> usize {
        self.base_graph().vertex_count()
    }
}

/// A set of at most a few failed edges (`F ⊆ E`, `|F| ≤ f`).
///
/// Fault sets are kept sorted and deduplicated so that equality and hashing
/// are canonical, which the verification and enumeration code relies on.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct FaultSet {
    edges: Vec<EdgeId>,
}

impl FaultSet {
    /// The empty fault set (the fault-free case `F = ∅`).
    pub fn empty() -> Self {
        FaultSet { edges: Vec::new() }
    }

    /// A fault set containing a single failed edge.
    pub fn single(e: EdgeId) -> Self {
        FaultSet { edges: vec![e] }
    }

    /// A fault set containing two failed edges.
    ///
    /// The pair is canonicalised; the two edges may be equal, in which case
    /// the set has size one.
    pub fn pair(a: EdgeId, b: EdgeId) -> Self {
        FaultSet::from_iter([a, b])
    }

    /// Number of (distinct) failed edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if no edge has failed.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Returns `true` if `e` is one of the failed edges.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }

    /// The failed edges, sorted by id.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Returns a new fault set with `e` added.
    pub fn with(&self, e: EdgeId) -> Self {
        let mut edges = self.edges.clone();
        edges.push(e);
        FaultSet::from_iter(edges)
    }

    /// Union of two fault sets.
    pub fn union(&self, other: &FaultSet) -> Self {
        FaultSet::from_iter(self.edges.iter().chain(other.edges.iter()).copied())
    }

    /// Returns `true` if any failed edge lies on `path` (resolved in `graph`).
    pub fn intersects_path(&self, graph: &Graph, path: &crate::path::Path) -> bool {
        path.edge_pairs().any(|(a, b)| {
            graph
                .edge_between(a, b)
                .map(|e| self.contains(e))
                .unwrap_or(false)
        })
    }
}

impl fmt::Debug for FaultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{{")?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", e.0)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<EdgeId> for FaultSet {
    /// Builds a fault set from arbitrary edges, sorting and deduplicating.
    fn from_iter<I: IntoIterator<Item = EdgeId>>(iter: I) -> Self {
        let mut edges: Vec<EdgeId> = iter.into_iter().collect();
        edges.sort_unstable();
        edges.dedup();
        FaultSet { edges }
    }
}

impl From<EdgeId> for FaultSet {
    /// A single-failure set, so call sites can write `e.into()`.
    fn from(e: EdgeId) -> Self {
        FaultSet::single(e)
    }
}

impl From<(EdgeId, EdgeId)> for FaultSet {
    /// A (canonicalised) dual-failure set from a pair of edges.
    fn from((a, b): (EdgeId, EdgeId)) -> Self {
        FaultSet::pair(a, b)
    }
}

impl From<&[EdgeId]> for FaultSet {
    /// A fault set from a slice of edges (sorted and deduplicated).
    fn from(edges: &[EdgeId]) -> Self {
        FaultSet::from_iter(edges.iter().copied())
    }
}

impl<const N: usize> From<[EdgeId; N]> for FaultSet {
    /// A fault set from an edge array (sorted and deduplicated).
    fn from(edges: [EdgeId; N]) -> Self {
        FaultSet::from_iter(edges)
    }
}

/// A *typed* fault specification, the query-serving counterpart of
/// [`FaultSet`].
///
/// Serving code cares intensely about the size of `F`: the paper's
/// dual-failure structures answer exactly only for `|F| ≤ 2`, and the hot
/// query paths want the no-fault and one/two-fault cases to be branch-free
/// (two integer compares against frozen arc ids, no loop over an edge
/// list).  `FaultSpec` makes the size a *type-level dispatch* instead of a
/// runtime `len()` check:
///
/// * [`FaultSpec::None`] — the fault-free case `F = ∅`;
/// * [`FaultSpec::One`] — a single failed edge;
/// * [`FaultSpec::Pair`] — two distinct failed edges, canonically ordered;
/// * [`FaultSpec::Many`] — three or more failures, carried as a
///   [`FaultSet`]; answers beyond a structure's designed resilience are
///   best-effort (exact inside `H ∖ F`, not necessarily equal to
///   `dist(·, ·, G ∖ F)`).
///
/// All constructors canonicalise: duplicate edges collapse, pairs are
/// ordered, and a `Many` never holds fewer than three distinct edges —
/// so equality and hashing are structural and a `(source, FaultSpec)`
/// cache key is canonical.
///
/// # Examples
///
/// ```
/// use ftbfs_graph::{EdgeId, FaultSpec};
///
/// let one: FaultSpec = EdgeId(3).into();
/// assert_eq!(one, FaultSpec::One(EdgeId(3)));
///
/// // Pairs canonicalise: order does not matter, duplicates collapse.
/// assert_eq!(
///     FaultSpec::from((EdgeId(9), EdgeId(2))),
///     FaultSpec::Pair(EdgeId(2), EdgeId(9)),
/// );
/// assert_eq!(FaultSpec::from((EdgeId(4), EdgeId(4))), FaultSpec::One(EdgeId(4)));
///
/// let many = FaultSpec::from(&[EdgeId(5), EdgeId(1), EdgeId(5), EdgeId(8)][..]);
/// assert_eq!(many.len(), 3);
/// assert!(many.contains(EdgeId(8)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum FaultSpec {
    /// The fault-free case `F = ∅`.
    #[default]
    None,
    /// Exactly one failed edge.
    One(EdgeId),
    /// Exactly two distinct failed edges, canonically ordered by id.
    ///
    /// Constructors and `From` conversions always order the pair; a
    /// hand-built non-canonical `Pair(b, a)` still answers correctly (the
    /// query engine re-canonicalises internally) but compares unequal to
    /// the canonical spec.
    Pair(EdgeId, EdgeId),
    /// Three or more distinct failed edges (sorted, deduplicated).
    Many(FaultSet),
}

impl FaultSpec {
    /// Builds a canonical spec from arbitrary edges (sorted, deduplicated,
    /// downgraded to the smallest fitting variant).
    pub fn from_edges<I: IntoIterator<Item = EdgeId>>(edges: I) -> Self {
        FaultSpec::from_set(FaultSet::from_iter(edges))
    }

    /// Builds a spec from an already-canonical [`FaultSet`] without
    /// re-sorting.
    pub fn from_set(set: FaultSet) -> Self {
        match set.edges() {
            [] => FaultSpec::None,
            [e] => FaultSpec::One(*e),
            [a, b] => FaultSpec::Pair(*a, *b),
            _ => FaultSpec::Many(set),
        }
    }

    /// Number of (distinct) failed edges.
    pub fn len(&self) -> usize {
        match self {
            FaultSpec::None => 0,
            FaultSpec::One(_) => 1,
            FaultSpec::Pair(_, _) => 2,
            FaultSpec::Many(set) => set.len(),
        }
    }

    /// Returns `true` if no edge has failed.
    pub fn is_empty(&self) -> bool {
        matches!(self, FaultSpec::None)
    }

    /// Returns `true` if `e` is one of the failed edges.
    pub fn contains(&self, e: EdgeId) -> bool {
        match self {
            FaultSpec::None => false,
            FaultSpec::One(a) => *a == e,
            FaultSpec::Pair(a, b) => *a == e || *b == e,
            FaultSpec::Many(set) => set.contains(e),
        }
    }

    /// Iterates over the failed edges in increasing id order, without
    /// allocating.
    pub fn iter(&self) -> FaultSpecIter<'_> {
        FaultSpecIter {
            inner: match self {
                FaultSpec::None => SpecIterInner::Inline(None, None),
                FaultSpec::One(a) => SpecIterInner::Inline(Some(*a), None),
                FaultSpec::Pair(a, b) => SpecIterInner::Inline(Some(*a), Some(*b)),
                FaultSpec::Many(set) => SpecIterInner::Slice(set.edges().iter()),
            },
        }
    }

    /// The spec as an owned [`FaultSet`] (allocates for `One`/`Two`; used
    /// by compatibility shims and verification, not by hot query paths).
    pub fn to_fault_set(&self) -> FaultSet {
        match self {
            FaultSpec::None => FaultSet::empty(),
            FaultSpec::One(a) => FaultSet::single(*a),
            FaultSpec::Pair(a, b) => FaultSet::pair(*a, *b),
            FaultSpec::Many(set) => set.clone(),
        }
    }
}

/// Borrowed iterator over a [`FaultSpec`]'s edges; see [`FaultSpec::iter`].
#[derive(Clone, Debug)]
pub struct FaultSpecIter<'a> {
    inner: SpecIterInner<'a>,
}

#[derive(Clone, Debug)]
enum SpecIterInner<'a> {
    /// Up to two inline edges (`None`, `One`, `Two`), emitted in order.
    Inline(Option<EdgeId>, Option<EdgeId>),
    /// Borrowed walk over a `Many` fault set.
    Slice(std::slice::Iter<'a, EdgeId>),
}

impl Iterator for FaultSpecIter<'_> {
    type Item = EdgeId;

    fn next(&mut self) -> Option<EdgeId> {
        match &mut self.inner {
            SpecIterInner::Inline(first, second) => first.take().or_else(|| second.take()),
            SpecIterInner::Slice(iter) => iter.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match &self.inner {
            SpecIterInner::Inline(a, b) => a.is_some() as usize + b.is_some() as usize,
            SpecIterInner::Slice(iter) => iter.len(),
        };
        (n, Some(n))
    }
}

impl From<EdgeId> for FaultSpec {
    /// A single-failure spec, so call sites can write `e.into()`.
    fn from(e: EdgeId) -> Self {
        FaultSpec::One(e)
    }
}

impl From<(EdgeId, EdgeId)> for FaultSpec {
    /// A canonical two-failure spec; equal edges collapse to
    /// [`FaultSpec::One`].
    fn from((a, b): (EdgeId, EdgeId)) -> Self {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => FaultSpec::Pair(a, b),
            std::cmp::Ordering::Equal => FaultSpec::One(a),
            std::cmp::Ordering::Greater => FaultSpec::Pair(b, a),
        }
    }
}

impl From<&[EdgeId]> for FaultSpec {
    /// A canonical spec from a slice of edges (sorted, deduplicated,
    /// downgraded to the smallest fitting variant).
    fn from(edges: &[EdgeId]) -> Self {
        FaultSpec::from_edges(edges.iter().copied())
    }
}

impl<const N: usize> From<[EdgeId; N]> for FaultSpec {
    /// A canonical spec from an edge array.
    fn from(edges: [EdgeId; N]) -> Self {
        FaultSpec::from_edges(edges)
    }
}

impl From<FaultSet> for FaultSpec {
    /// Reuses the set's canonical order; no re-sorting.
    fn from(set: FaultSet) -> Self {
        FaultSpec::from_set(set)
    }
}

impl From<&FaultSet> for FaultSpec {
    /// Clones the set only in the `Many` case; the branch-free variants
    /// copy the edge ids out of the borrow (this conversion sits on the
    /// compatibility-shim query path, so it must not allocate for
    /// `|F| ≤ 2`).
    fn from(set: &FaultSet) -> Self {
        match set.edges() {
            [] => FaultSpec::None,
            [e] => FaultSpec::One(*e),
            [a, b] => FaultSpec::Pair(*a, *b),
            _ => FaultSpec::Many(set.clone()),
        }
    }
}

impl From<FaultSpec> for FaultSet {
    fn from(spec: FaultSpec) -> Self {
        match spec {
            FaultSpec::Many(set) => set,
            other => other.to_fault_set(),
        }
    }
}

impl From<&FaultSpec> for FaultSet {
    fn from(spec: &FaultSpec) -> Self {
        spec.to_fault_set()
    }
}

/// A restricted view of a graph: the base graph minus removed edges and
/// vertices, optionally with the edges incident to one designated vertex
/// replaced by an explicit allowed subset.
///
/// Views are cheap to clone and to build; searches (`bfs`, `dijkstra`)
/// consult [`GraphView::allows_edge`] / [`GraphView::allows_vertex`] during
/// traversal.
///
/// # Examples
///
/// ```
/// use ftbfs_graph::{GraphBuilder, GraphView, VertexId, bfs};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(VertexId(0), VertexId(1));
/// b.add_edge(VertexId(1), VertexId(2));
/// b.add_edge(VertexId(0), VertexId(3));
/// b.add_edge(VertexId(3), VertexId(2));
/// let g = b.build();
///
/// // Remove the edge (1,2): vertex 2 is now reached through 3.
/// let e = g.edge_between(VertexId(1), VertexId(2)).unwrap();
/// let view = GraphView::new(&g).without_edge(e);
/// let res = bfs(&view, VertexId(0));
/// assert_eq!(res.distance(VertexId(2)), Some(2));
/// ```
#[derive(Clone)]
pub struct GraphView<'g> {
    graph: &'g Graph,
    removed_edges: HashSet<EdgeId>,
    removed_vertices: HashSet<VertexId>,
    /// If set, edges incident to `.0` are allowed only when contained in `.1`.
    incident_restriction: Option<(VertexId, HashSet<EdgeId>)>,
}

impl<'g> GraphView<'g> {
    /// The unrestricted view of `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        GraphView {
            graph,
            removed_edges: HashSet::new(),
            removed_vertices: HashSet::new(),
            incident_restriction: None,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Removes a single edge from the view.
    pub fn without_edge(mut self, e: EdgeId) -> Self {
        self.removed_edges.insert(e);
        self
    }

    /// Removes every edge of `faults` from the view (`G ∖ F`).
    pub fn without_faults(mut self, faults: &FaultSet) -> Self {
        self.removed_edges.extend(faults.edges().iter().copied());
        self
    }

    /// Removes the listed edges from the view.
    pub fn without_edges<I: IntoIterator<Item = EdgeId>>(mut self, edges: I) -> Self {
        self.removed_edges.extend(edges);
        self
    }

    /// Removes the listed vertices (and implicitly all their incident edges)
    /// from the view.
    pub fn without_vertices<I: IntoIterator<Item = VertexId>>(mut self, vertices: I) -> Self {
        self.removed_vertices.extend(vertices);
        self
    }

    /// Re-allows a vertex that was previously removed (used by the
    /// `∪ {u_k, v}` part of Eq. (3)).
    pub fn keeping_vertex(mut self, v: VertexId) -> Self {
        self.removed_vertices.remove(&v);
        self
    }

    /// Restricts the edges incident to `v` to the given allowed set.  All
    /// other edges incident to `v` behave as removed.  This models the graph
    /// `G_{τ-1}(v) = (G ∖ E(v,G)) ∪ E_{τ-1}(v)` used by step (3) of
    /// `Cons2FTBFS`.
    pub fn with_incident_restriction<I: IntoIterator<Item = EdgeId>>(
        mut self,
        v: VertexId,
        allowed: I,
    ) -> Self {
        self.incident_restriction = Some((v, allowed.into_iter().collect()));
        self
    }

    /// Returns `true` if vertex `v` is present in the view.
    #[inline]
    pub fn allows_vertex(&self, v: VertexId) -> bool {
        !self.removed_vertices.contains(&v)
    }

    /// Returns `true` if edge `e` is present in the view (both endpoints
    /// present, the edge not removed, and the incident restriction — if any —
    /// satisfied).
    pub fn allows_edge(&self, e: EdgeId) -> bool {
        if self.removed_edges.contains(&e) {
            return false;
        }
        let ep = self.graph.endpoints(e);
        if !self.allows_vertex(ep.u) || !self.allows_vertex(ep.v) {
            return false;
        }
        if let Some((v, allowed)) = &self.incident_restriction {
            if ep.contains(*v) && !allowed.contains(&e) {
                return false;
            }
        }
        true
    }

    /// Iterates over the `(neighbour, edge)` pairs of `v` that survive the
    /// restriction.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let live = self.allows_vertex(v);
        self.graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(move |&(u, e)| live && self.allows_vertex(u) && self.allows_edge(e))
    }

    /// Number of vertices of the underlying graph (including removed ones;
    /// removed vertices simply have no surviving incident edges).
    pub fn vertex_bound(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Counts the edges surviving in the view.  Linear in `m`; intended for
    /// tests and reports, not inner loops.
    pub fn surviving_edge_count(&self) -> usize {
        self.graph.edges().filter(|&e| self.allows_edge(e)).count()
    }
}

impl Restriction for GraphView<'_> {
    fn base_graph(&self) -> &Graph {
        self.graph
    }

    fn allows_vertex(&self, v: VertexId) -> bool {
        GraphView::allows_vertex(self, v)
    }

    fn allows_edge(&self, e: EdgeId) -> bool {
        GraphView::allows_edge(self, e)
    }
}

/// A reusable, epoch-stamped restriction scratch buffer.
///
/// One overlay serves an unbounded sequence of restrictions: call
/// [`ViewOverlay::begin`] to start a fresh (empty) restriction, mark removals
/// with [`ViewOverlay::remove_vertex`] / [`ViewOverlay::remove_edge`] /
/// [`ViewOverlay::remove_faults`] / [`ViewOverlay::restrict_incident`], and
/// obtain a [`Restriction`] via [`ViewOverlay::view`].  After the arrays have
/// grown to the graph's size once, no call allocates.
///
/// See the module docs for the epoch-stamping invariants.
///
/// # Examples
///
/// ```
/// use ftbfs_graph::{GraphBuilder, Restriction, VertexId, ViewOverlay};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(VertexId(0), VertexId(1));
/// b.add_edge(VertexId(1), VertexId(2));
/// let g = b.build();
///
/// let mut overlay = ViewOverlay::new();
/// overlay.begin(&g);
/// overlay.remove_vertex(VertexId(1));
/// assert!(!overlay.view(&g).allows_vertex(VertexId(1)));
///
/// // Restarting is O(1): the previous removal no longer applies.
/// overlay.begin(&g);
/// assert!(overlay.view(&g).allows_vertex(VertexId(1)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ViewOverlay {
    epoch: u64,
    removed_vertex: Vec<u64>,
    removed_edge: Vec<u64>,
    /// Allowed-marks for the incident restriction, stamped with
    /// `incident_serial` (not `epoch`) so every `restrict_incident` call
    /// starts from a clean allowed set.
    incident_allowed: Vec<u64>,
    incident_serial: u64,
    incident_vertex: Option<VertexId>,
}

impl ViewOverlay {
    /// Creates an empty overlay; arrays grow lazily on first [`Self::begin`].
    pub fn new() -> Self {
        ViewOverlay::default()
    }

    /// Starts a fresh, empty restriction for `graph`.
    ///
    /// Bumps the epoch (invalidating all previous marks in `O(1)`) and grows
    /// the stamp arrays if the graph is larger than any seen before.
    pub fn begin(&mut self, graph: &Graph) {
        self.epoch += 1;
        if self.removed_vertex.len() < graph.vertex_count() {
            self.removed_vertex.resize(graph.vertex_count(), 0);
        }
        if self.removed_edge.len() < graph.edge_count() {
            self.removed_edge.resize(graph.edge_count(), 0);
            self.incident_allowed.resize(graph.edge_count(), 0);
        }
        self.incident_vertex = None;
    }

    /// Removes vertex `v` (and implicitly all its incident edges) from the
    /// current restriction.
    #[inline]
    pub fn remove_vertex(&mut self, v: VertexId) {
        self.removed_vertex[v.index()] = self.epoch;
    }

    /// Removes edge `e` from the current restriction.
    #[inline]
    pub fn remove_edge(&mut self, e: EdgeId) {
        self.removed_edge[e.index()] = self.epoch;
    }

    /// Removes every edge of `faults` from the current restriction (`G ∖ F`).
    pub fn remove_faults(&mut self, faults: &FaultSet) {
        for &e in faults.edges() {
            self.remove_edge(e);
        }
    }

    /// Restricts the edges incident to `v` to the given allowed set; all
    /// other edges incident to `v` behave as removed (`G_{τ-1}(v)` of step
    /// (3) of `Cons2FTBFS`).  At most one incident restriction is active at a
    /// time: calling this again fully replaces the previous one (the
    /// allowed-marks carry their own serial, so earlier marks cannot leak
    /// into the new restriction).
    pub fn restrict_incident<I: IntoIterator<Item = EdgeId>>(&mut self, v: VertexId, allowed: I) {
        self.incident_serial += 1;
        self.incident_vertex = Some(v);
        for e in allowed {
            self.incident_allowed[e.index()] = self.incident_serial;
        }
    }

    /// The current restriction as a [`Restriction`] view over `graph`.
    ///
    /// `graph` must be the graph passed to the most recent [`Self::begin`].
    pub fn view<'a>(&'a self, graph: &'a Graph) -> OverlayView<'a> {
        debug_assert!(self.removed_vertex.len() >= graph.vertex_count());
        debug_assert!(self.removed_edge.len() >= graph.edge_count());
        OverlayView {
            graph,
            overlay: self,
        }
    }
}

/// A borrowed [`Restriction`] over a [`ViewOverlay`]'s current marks.
#[derive(Clone, Copy, Debug)]
pub struct OverlayView<'a> {
    graph: &'a Graph,
    overlay: &'a ViewOverlay,
}

impl Restriction for OverlayView<'_> {
    fn base_graph(&self) -> &Graph {
        self.graph
    }

    #[inline]
    fn allows_vertex(&self, v: VertexId) -> bool {
        self.overlay.removed_vertex[v.index()] != self.overlay.epoch
    }

    #[inline]
    fn allows_edge(&self, e: EdgeId) -> bool {
        let o = self.overlay;
        if o.removed_edge[e.index()] == o.epoch {
            return false;
        }
        let ep = self.graph.endpoints(e);
        if !self.allows_vertex(ep.u) || !self.allows_vertex(ep.v) {
            return false;
        }
        if let Some(iv) = o.incident_vertex {
            if ep.contains(iv) && o.incident_allowed[e.index()] != o.incident_serial {
                return false;
            }
        }
        true
    }
}

impl fmt::Debug for GraphView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraphView")
            .field("graph", &self.graph)
            .field("removed_edges", &self.removed_edges.len())
            .field("removed_vertices", &self.removed_vertices.len())
            .field(
                "incident_restriction",
                &self
                    .incident_restriction
                    .as_ref()
                    .map(|(v, s)| (*v, s.len())),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn square() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(v(0), v(1));
        b.add_edge(v(1), v(2));
        b.add_edge(v(2), v(3));
        b.add_edge(v(3), v(0));
        b.build()
    }

    #[test]
    fn fault_set_canonicalisation() {
        let e1 = EdgeId(3);
        let e2 = EdgeId(1);
        let f = FaultSet::pair(e1, e2);
        assert_eq!(f.edges(), &[EdgeId(1), EdgeId(3)]);
        assert_eq!(f.len(), 2);
        assert!(f.contains(e1));
        assert!(f.contains(e2));
        assert!(!f.contains(EdgeId(0)));
        let same = FaultSet::pair(e2, e1);
        assert_eq!(f, same);
        let dup = FaultSet::pair(e1, e1);
        assert_eq!(dup.len(), 1);
        assert!(FaultSet::empty().is_empty());
    }

    #[test]
    fn fault_spec_canonicalisation_and_iteration() {
        assert_eq!(FaultSpec::default(), FaultSpec::None);
        assert_eq!(FaultSpec::from_edges([]), FaultSpec::None);
        assert_eq!(FaultSpec::from(EdgeId(4)), FaultSpec::One(EdgeId(4)));
        assert_eq!(
            FaultSpec::from((EdgeId(7), EdgeId(2))),
            FaultSpec::Pair(EdgeId(2), EdgeId(7))
        );
        assert_eq!(
            FaultSpec::from((EdgeId(5), EdgeId(5))),
            FaultSpec::One(EdgeId(5))
        );
        let many = FaultSpec::from([EdgeId(9), EdgeId(1), EdgeId(9), EdgeId(4)]);
        assert_eq!(many.len(), 3);
        assert!(!many.is_empty());
        assert!(many.contains(EdgeId(4)));
        assert!(!many.contains(EdgeId(2)));
        let collected: Vec<EdgeId> = many.iter().collect();
        assert_eq!(collected, vec![EdgeId(1), EdgeId(4), EdgeId(9)]);
        // Size hints are exact for both iterator shapes.
        assert_eq!(
            FaultSpec::Pair(EdgeId(0), EdgeId(1)).iter().size_hint(),
            (2, Some(2))
        );
        assert_eq!(many.iter().size_hint(), (3, Some(3)));
        // Slices with ≤ 2 distinct edges downgrade to the small variants.
        assert_eq!(
            FaultSpec::from(&[EdgeId(3), EdgeId(3)][..]),
            FaultSpec::One(EdgeId(3))
        );
    }

    #[test]
    fn fault_spec_round_trips_with_fault_set() {
        let set = FaultSet::from_iter([EdgeId(2), EdgeId(8), EdgeId(5)]);
        let spec = FaultSpec::from(&set);
        assert_eq!(spec.len(), 3);
        assert_eq!(FaultSet::from(&spec), set);
        assert_eq!(FaultSet::from(spec.clone()), set);
        assert_eq!(FaultSpec::from(set.clone()), spec);
        // Small sets map to the branch-free variants and back.
        let one = FaultSet::single(EdgeId(6));
        assert_eq!(FaultSpec::from(&one), FaultSpec::One(EdgeId(6)));
        assert_eq!(one.clone(), FaultSpec::from(&one).to_fault_set());
        let empty = FaultSpec::from(FaultSet::empty());
        assert_eq!(empty, FaultSpec::None);
        assert_eq!(empty.iter().next(), None);
    }

    #[test]
    fn fault_set_from_conversions() {
        assert_eq!(FaultSet::from(EdgeId(3)), FaultSet::single(EdgeId(3)));
        assert_eq!(
            FaultSet::from((EdgeId(9), EdgeId(1))),
            FaultSet::pair(EdgeId(1), EdgeId(9))
        );
        assert_eq!(
            FaultSet::from(&[EdgeId(2), EdgeId(2), EdgeId(0)][..]),
            FaultSet::pair(EdgeId(0), EdgeId(2))
        );
        assert_eq!(
            FaultSet::from([EdgeId(4), EdgeId(4)]),
            FaultSet::single(EdgeId(4))
        );
    }

    #[test]
    fn fault_set_with_and_union() {
        let f = FaultSet::single(EdgeId(5));
        let g = f.with(EdgeId(2));
        assert_eq!(g.edges(), &[EdgeId(2), EdgeId(5)]);
        let h = g.union(&FaultSet::pair(EdgeId(5), EdgeId(9)));
        assert_eq!(h.edges(), &[EdgeId(2), EdgeId(5), EdgeId(9)]);
    }

    #[test]
    fn fault_set_intersects_path() {
        let g = square();
        let e01 = g.edge_between(v(0), v(1)).unwrap();
        let f = FaultSet::single(e01);
        let p = crate::path::Path::new(vec![v(3), v(0), v(1)]);
        assert!(f.intersects_path(&g, &p));
        let q = crate::path::Path::new(vec![v(1), v(2), v(3)]);
        assert!(!f.intersects_path(&g, &q));
    }

    #[test]
    fn view_edge_removal() {
        let g = square();
        let e = g.edge_between(v(0), v(1)).unwrap();
        let view = GraphView::new(&g).without_edge(e);
        assert!(!view.allows_edge(e));
        assert_eq!(view.surviving_edge_count(), 3);
        assert_eq!(view.neighbors(v(0)).count(), 1);
        assert_eq!(view.neighbors(v(2)).count(), 2);
    }

    #[test]
    fn view_vertex_removal_and_keeping() {
        let g = square();
        let view = GraphView::new(&g).without_vertices([v(1)]);
        assert!(!view.allows_vertex(v(1)));
        assert_eq!(view.neighbors(v(0)).count(), 1); // only 3 survives
        assert_eq!(view.neighbors(v(1)).count(), 0);
        let restored = GraphView::new(&g)
            .without_vertices([v(1), v(2)])
            .keeping_vertex(v(2));
        assert!(restored.allows_vertex(v(2)));
        assert!(!restored.allows_vertex(v(1)));
    }

    #[test]
    fn view_incident_restriction() {
        let g = square();
        let e30 = g.edge_between(v(3), v(0)).unwrap();
        let e23 = g.edge_between(v(2), v(3)).unwrap();
        // Only the edge (3,0) is allowed at vertex 3.
        let view = GraphView::new(&g).with_incident_restriction(v(3), [e30]);
        assert!(view.allows_edge(e30));
        assert!(!view.allows_edge(e23));
        assert_eq!(view.neighbors(v(3)).count(), 1);
        // Edges not incident to 3 are unaffected.
        let e01 = g.edge_between(v(0), v(1)).unwrap();
        assert!(view.allows_edge(e01));
    }

    #[test]
    fn view_without_faults() {
        let g = square();
        let e01 = g.edge_between(v(0), v(1)).unwrap();
        let e23 = g.edge_between(v(2), v(3)).unwrap();
        let view = GraphView::new(&g).without_faults(&FaultSet::pair(e01, e23));
        assert_eq!(view.surviving_edge_count(), 2);
    }

    #[test]
    fn overlay_restrict_incident_replaces_previous_restriction() {
        let g = square();
        let e01 = g.edge_between(v(0), v(1)).unwrap();
        let e30 = g.edge_between(v(3), v(0)).unwrap();
        let e23 = g.edge_between(v(2), v(3)).unwrap();
        let mut overlay = ViewOverlay::new();
        overlay.begin(&g);
        overlay.restrict_incident(v(0), [e01]);
        // Second call in the same epoch: the earlier allowed-marks must not
        // leak into the new restriction.
        overlay.restrict_incident(v(3), [e23]);
        let view = overlay.view(&g);
        assert!(Restriction::allows_edge(&view, e23));
        assert!(!Restriction::allows_edge(&view, e30));
        // e01 is no longer incident-restricted (vertex 0 is not the subject).
        assert!(Restriction::allows_edge(&view, e01));
    }

    #[test]
    fn overlay_epoch_reset_clears_all_marks() {
        let g = square();
        let e01 = g.edge_between(v(0), v(1)).unwrap();
        let mut overlay = ViewOverlay::new();
        overlay.begin(&g);
        overlay.remove_edge(e01);
        overlay.remove_vertex(v(2));
        overlay.restrict_incident(v(3), []);
        {
            let view = overlay.view(&g);
            assert!(!Restriction::allows_edge(&view, e01));
            assert!(!Restriction::allows_vertex(&view, v(2)));
            assert_eq!(view.vertex_bound(), 4);
        }
        overlay.begin(&g);
        let view = overlay.view(&g);
        for e in g.edges() {
            assert!(Restriction::allows_edge(&view, e));
        }
        for x in g.vertices() {
            assert!(Restriction::allows_vertex(&view, x));
        }
    }

    #[test]
    fn debug_formats() {
        let g = square();
        let f = FaultSet::pair(EdgeId(0), EdgeId(2));
        assert_eq!(format!("{f:?}"), "F{0,2}");
        let view = GraphView::new(&g).without_edge(EdgeId(0));
        let s = format!("{view:?}");
        assert!(s.contains("removed_edges"));
    }
}
