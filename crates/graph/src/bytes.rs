//! Little-endian byte I/O helpers for compact binary snapshot formats.
//!
//! The text edge-list format of [`crate::io`] is meant for eyeballing; the
//! query-serving subsystem (`ftbfs-oracle`) additionally persists frozen
//! structures as *binary* snapshots with a magic header and a checksum.
//! This module provides the shared primitives: fixed-width little-endian
//! writers, a bounds-checked [`ByteReader`], alignment padding for
//! mmap-oriented section layouts, the FNV-1a checksums used to detect
//! corrupted or truncated snapshot files, and zero-copy little-endian
//! array views ([`LeU32s`], [`WordSlice`]) that serve `u32` arrays straight
//! out of mapped snapshot bytes.
//!
//! All integers are encoded little-endian so snapshots are byte-identical
//! across platforms.  Decoding **never** reinterprets raw snapshot bytes at
//! native endianness: every read goes through `u32::from_le_bytes` /
//! `u64::from_le_bytes` (the workspace forbids `unsafe`, so transmutes and
//! `align_to` tricks are impossible by construction), which compiles to a
//! plain load on little-endian hardware and a byte swap on big-endian
//! hardware — same bytes, same values, everywhere.

use std::fmt;

/// Appends a `u16` in little-endian order.
#[inline]
pub fn put_u16(buf: &mut Vec<u8>, value: u16) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u32` in little-endian order.
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends every `u32` of `values` in little-endian order — the bulk writer
/// behind snapshot array sections.
pub fn put_u32_slice(buf: &mut Vec<u8>, values: &[u32]) {
    buf.reserve(4 * values.len());
    for &v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Pads `buf` with zero bytes until its length is a multiple of `align`.
///
/// Snapshot sections are aligned this way so that, when a snapshot file is
/// mapped at a page boundary, every section starts on an `align`-byte
/// boundary in memory.
///
/// # Panics
///
/// Panics if `align` is zero.
pub fn pad_to_align(buf: &mut Vec<u8>, align: usize) {
    assert!(align > 0, "alignment must be positive");
    let rem = buf.len() % align;
    if rem != 0 {
        buf.resize(buf.len() + (align - rem), 0);
    }
}

/// Error produced when a [`ByteReader`] runs out of input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ByteError {
    /// Byte offset at which the read was attempted.
    pub at: usize,
    /// Number of bytes the read needed.
    pub wanted: usize,
    /// Number of bytes that were actually available.
    pub available: usize,
}

impl fmt::Display for ByteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected end of input at byte {}: wanted {} bytes, {} available",
            self.at, self.wanted, self.available
        )
    }
}

impl std::error::Error for ByteError {}

/// A bounds-checked cursor over a byte slice, the reading counterpart of the
/// `put_*` writers.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Current byte offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns `true` if every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads `len` raw bytes.
    pub fn take_bytes(&mut self, len: usize) -> Result<&'a [u8], ByteError> {
        if self.remaining() < len {
            return Err(ByteError {
                at: self.pos,
                wanted: len,
                available: self.remaining(),
            });
        }
        let slice = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, ByteError> {
        let b = self.take_bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, ByteError> {
        let b = self.take_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, ByteError> {
        let b = self.take_bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Incremental 64-bit FNV-1a: the streaming form of [`fnv1a64`], for
/// hashing inputs assembled from several slices without concatenating them.
///
/// ```
/// use ftbfs_graph::bytes::{fnv1a64, Fnv1a};
/// let whole = fnv1a64(b"frozen structure");
/// let streamed = Fnv1a::new().update(b"frozen ").update(b"structure").finish();
/// assert_eq!(whole, streamed);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher positioned at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET_BASIS)
    }

    /// Absorbs `bytes`, one byte per FNV step.
    #[must_use]
    pub fn update(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Absorbs `bytes` as little-endian 64-bit words, one **word** per FNV
    /// step — the bulk-checksum variant used by snapshot sections (8× fewer
    /// serial multiplies than the byte-stepped form, so open-time
    /// checksumming stays off the serving critical path).  A trailing
    /// partial word (sections are `u32`-granular, so at most 4 bytes) is
    /// zero-extended.  The words are decoded little-endian, so the digest
    /// is platform-independent.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` is not a multiple of 4 (sections store `u32`
    /// arrays, so their lengths always are).
    #[must_use]
    pub fn update_words(mut self, bytes: &[u8]) -> Self {
        assert!(
            bytes.len() % 4 == 0,
            "word-stepped FNV needs a whole number of u32 words"
        );
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.0 ^= u64::from_le_bytes([
                chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
            ]);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            self.0 ^= u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]) as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// The digest of everything absorbed so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// The 64-bit FNV-1a hash of `bytes` — the checksum used by binary
/// snapshots (and as a cheap structural fingerprint).
///
/// FNV-1a is not cryptographic; it detects accidental corruption and
/// truncation, which is all the snapshot formats need.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    Fnv1a::new().update(bytes).finish()
}

/// The 64-bit-word-stepped FNV-1a digest of `bytes` (see
/// [`Fnv1a::update_words`]): the section checksum of the v2 snapshot
/// format.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of 4.
pub fn fnv1a64_words(bytes: &[u8]) -> u64 {
    Fnv1a::new().update_words(bytes).finish()
}

/// A zero-copy view of a byte region as an array of little-endian `u32`s —
/// the read side of [`put_u32_slice`].
///
/// This is how mmap-served snapshots expose their big arrays: the bytes
/// stay wherever they are (an owned buffer, a mapped file) and every access
/// decodes 4 bytes via `u32::from_le_bytes`, which is a plain load on
/// little-endian hardware.  No native-endian reinterpretation ever happens.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeU32s<'a> {
    bytes: &'a [u8],
}

impl<'a> LeU32s<'a> {
    /// Wraps `bytes` as a `u32` array view.
    ///
    /// Returns `None` if the length is not a multiple of 4.
    pub fn new(bytes: &'a [u8]) -> Option<Self> {
        if bytes.len() % 4 != 0 {
            return None;
        }
        Some(LeU32s { bytes })
    }

    /// An empty view.
    pub fn empty() -> Self {
        LeU32s { bytes: &[] }
    }

    /// Number of `u32` elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len() / 4
    }

    /// Returns `true` if the view holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The `i`-th element, decoded little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        let at = i * 4;
        u32::from_le_bytes([
            self.bytes[at],
            self.bytes[at + 1],
            self.bytes[at + 2],
            self.bytes[at + 3],
        ])
    }

    /// A sub-view of the element range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn slice(&self, lo: usize, hi: usize) -> LeU32s<'a> {
        LeU32s {
            bytes: &self.bytes[lo * 4..hi * 4],
        }
    }

    /// Iterates the decoded elements in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + 'a {
        self.bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }

    /// Binary-searches a sorted view for `x`, with `slice::binary_search`
    /// semantics.
    pub fn binary_search(&self, x: u32) -> Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let v = self.get(mid);
            if v < x {
                lo = mid + 1;
            } else if v > x {
                hi = mid;
            } else {
                return Ok(mid);
            }
        }
        Err(lo)
    }
}

/// A `u32` array that is either a native slice or a little-endian byte
/// view — the storage abstraction serving code reads through, so the same
/// query kernels run over heap-built structures and mmap'd snapshots.
///
/// The two-variant match in [`WordSlice::get`] is perfectly predictable
/// inside a query (the variant never changes mid-traversal), so the hot
/// BFS loop pays one well-predicted branch per access.
#[derive(Clone, Copy, Debug)]
pub enum WordSlice<'a> {
    /// A native in-memory `u32` slice (heap-built structures).
    Native(&'a [u32]),
    /// A little-endian byte-backed view (mapped snapshots).
    Le(LeU32s<'a>),
}

impl<'a> WordSlice<'a> {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            WordSlice::Native(s) => s.len(),
            WordSlice::Le(l) => l.len(),
        }
    }

    /// Returns `true` if there are no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th element.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            WordSlice::Native(s) => s[i],
            WordSlice::Le(l) => l.get(i),
        }
    }

    /// Binary-searches a sorted array for `x`, with `slice::binary_search`
    /// semantics.
    #[inline]
    pub fn binary_search(&self, x: u32) -> Result<usize, usize> {
        match self {
            WordSlice::Native(s) => s.binary_search(&x),
            WordSlice::Le(l) => l.binary_search(x),
        }
    }

    /// Iterates the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + 'a {
        let (native, le) = match self {
            WordSlice::Native(s) => (Some(s.iter().copied()), None),
            WordSlice::Le(l) => (None, Some(l.iter())),
        };
        native.into_iter().flatten().chain(le.into_iter().flatten())
    }

    /// Returns `true` if the elements are strictly increasing (used by
    /// sortedness `debug_assert`s on slab edge tables).
    pub fn is_strictly_increasing(&self) -> bool {
        (1..self.len()).all(|i| self.get(i - 1) < self.get(i))
    }
}

/// Monomorphic read access to a `u32` array — implemented by native
/// slices, little-endian byte views, and [`WordSlice`] itself.
///
/// Hot kernels (the query engine's BFS) take their arrays as `impl
/// WordRead` and are dispatched **once per search** on the concrete
/// storage type, so the per-element accesses compile to direct indexing
/// (native) or direct LE loads (byte-backed) with no per-access variant
/// branch.
pub trait WordRead: Copy {
    /// The `i`-th element.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    fn read(&self, i: usize) -> u32;
}

impl WordRead for &[u32] {
    #[inline(always)]
    fn read(&self, i: usize) -> u32 {
        self[i]
    }
}

impl WordRead for LeU32s<'_> {
    #[inline(always)]
    fn read(&self, i: usize) -> u32 {
        self.get(i)
    }
}

impl WordRead for WordSlice<'_> {
    #[inline(always)]
    fn read(&self, i: usize) -> u32 {
        self.get(i)
    }
}

impl<'a> From<&'a [u32]> for WordSlice<'a> {
    fn from(s: &'a [u32]) -> Self {
        WordSlice::Native(s)
    }
}

impl<'a> From<&'a Vec<u32>> for WordSlice<'a> {
    fn from(s: &'a Vec<u32>) -> Self {
        WordSlice::Native(s)
    }
}

impl<'a> From<LeU32s<'a>> for WordSlice<'a> {
    fn from(l: LeU32s<'a>) -> Self {
        WordSlice::Le(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, 0x0123_4567_89AB_CDEF);
        assert_eq!(buf.len(), 14);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.take_u16().unwrap(), 0xBEEF);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(r.is_empty());
        assert_eq!(r.position(), 14);
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0x0102_0304);
        assert_eq!(buf, vec![0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn truncated_reads_error_with_context() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 7);
        let mut r = ByteReader::new(&buf);
        r.take_u16().unwrap();
        let err = r.take_u32().unwrap_err();
        assert_eq!(
            err,
            ByteError {
                at: 2,
                wanted: 4,
                available: 0
            }
        );
        assert!(err.to_string().contains("byte 2"));
        // The failed read does not advance the cursor.
        assert_eq!(r.position(), 2);
    }

    #[test]
    fn take_bytes_and_remaining() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r = ByteReader::new(&data);
        assert_eq!(r.take_bytes(2).unwrap(), &[1, 2]);
        assert_eq!(r.remaining(), 3);
        assert!(r.take_bytes(4).is_err());
        assert_eq!(r.take_bytes(3).unwrap(), &[3, 4, 5]);
        assert!(r.is_empty());
    }

    #[test]
    fn fnv_checksum_is_stable_and_sensitive() {
        // Reference value of FNV-1a("") is the offset basis.
        assert_eq!(fnv1a64(&[]), 0xcbf2_9ce4_8422_2325);
        let a = fnv1a64(b"frozen structure");
        let b = fnv1a64(b"frozen structurf");
        assert_ne!(a, b);
        assert_eq!(a, fnv1a64(b"frozen structure"));
    }

    #[test]
    fn streaming_fnv_matches_one_shot_and_word_fnv_detects_flips() {
        let data = b"dual failure resilient bfs structure"; // 36 bytes = 9 words
        assert_eq!(
            Fnv1a::new().update(&data[..7]).update(&data[7..]).finish(),
            fnv1a64(data)
        );
        // The word-stepped digest is deterministic, differs from the
        // byte-stepped one, and any single-bit flip changes it.
        let words = fnv1a64_words(data);
        assert_eq!(words, fnv1a64_words(data));
        assert_ne!(words, fnv1a64(data));
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = *data;
                flipped[i] ^= 1 << bit;
                assert_ne!(fnv1a64_words(&flipped), words, "flip at byte {i} bit {bit}");
            }
        }
        assert_eq!(fnv1a64_words(&[]), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    #[should_panic]
    fn word_fnv_rejects_ragged_input() {
        let _ = fnv1a64_words(&[1, 2, 3]);
    }

    #[test]
    fn pad_to_align_and_bulk_writer() {
        let mut buf = vec![0xAAu8; 5];
        pad_to_align(&mut buf, 64);
        assert_eq!(buf.len(), 64);
        assert!(buf[5..].iter().all(|&b| b == 0));
        pad_to_align(&mut buf, 64); // already aligned: no-op
        assert_eq!(buf.len(), 64);
        let mut arr = Vec::new();
        put_u32_slice(&mut arr, &[1, 0x0102_0304, u32::MAX]);
        assert_eq!(arr.len(), 12);
        assert_eq!(&arr[4..8], &[0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn le_u32s_decodes_the_same_values_the_writer_encoded() {
        let values = [0u32, 1, 7, 0xDEAD_BEEF, u32::MAX, 42];
        let mut buf = Vec::new();
        put_u32_slice(&mut buf, &values);
        let view = LeU32s::new(&buf).expect("length is a multiple of 4");
        assert_eq!(view.len(), values.len());
        assert!(!view.is_empty());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(view.get(i), v);
        }
        assert_eq!(view.iter().collect::<Vec<_>>(), values);
        let sub = view.slice(1, 4);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.get(0), 1);
        assert_eq!(sub.get(2), 0xDEAD_BEEF);
        assert!(LeU32s::new(&buf[..7]).is_none());
        assert!(LeU32s::empty().is_empty());
    }

    #[test]
    fn le_u32s_reads_are_byte_order_defined_not_native() {
        // The byte pattern 01 02 03 04 must decode as 0x04030201 on every
        // platform: the little-endian *byte order* defines the value.  A
        // native-endian reinterpretation would decode 0x01020304 on
        // big-endian hardware; `from_le_bytes` cannot.
        let bytes = [0x01u8, 0x02, 0x03, 0x04];
        let view = LeU32s::new(&bytes).unwrap();
        assert_eq!(view.get(0), 0x0403_0201);
        assert_eq!(
            view.get(0),
            u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
        );
        // And unaligned backing storage is fine: LE decoding never requires
        // the bytes to sit on a u32 boundary in memory.
        let shifted = [0xFFu8, 0x01, 0x02, 0x03, 0x04];
        let view = LeU32s::new(&shifted[1..]).unwrap();
        assert_eq!(view.get(0), 0x0403_0201);
    }

    #[test]
    fn le_u32s_binary_search_matches_slice_semantics() {
        let values: Vec<u32> = vec![2, 3, 5, 8, 13, 21, 34];
        let mut buf = Vec::new();
        put_u32_slice(&mut buf, &values);
        let view = LeU32s::new(&buf).unwrap();
        for probe in 0..40u32 {
            assert_eq!(
                view.binary_search(probe),
                values.binary_search(&probe),
                "probe {probe}"
            );
        }
        assert_eq!(LeU32s::empty().binary_search(7), Err(0));
    }

    #[test]
    fn word_slice_native_and_le_agree() {
        let values: Vec<u32> = vec![1, 4, 9, 16, 25];
        let mut buf = Vec::new();
        put_u32_slice(&mut buf, &values);
        let native = WordSlice::from(&values[..]);
        let le = WordSlice::from(LeU32s::new(&buf).unwrap());
        assert_eq!(native.len(), le.len());
        assert!(!native.is_empty());
        for i in 0..values.len() {
            assert_eq!(native.get(i), le.get(i));
        }
        assert_eq!(
            native.iter().collect::<Vec<_>>(),
            le.iter().collect::<Vec<_>>()
        );
        for probe in [0u32, 4, 10, 25, 99] {
            assert_eq!(native.binary_search(probe), le.binary_search(probe));
        }
        assert!(native.is_strictly_increasing());
        assert!(le.is_strictly_increasing());
        let unsorted = [3u32, 1];
        assert!(!WordSlice::from(&unsorted[..]).is_strictly_increasing());
    }
}
