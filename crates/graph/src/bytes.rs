//! Little-endian byte I/O helpers for compact binary snapshot formats.
//!
//! The text edge-list format of [`crate::io`] is meant for eyeballing; the
//! query-serving subsystem (`ftbfs-oracle`) additionally persists frozen
//! structures as *binary* snapshots with a magic header and a checksum.
//! This module provides the shared primitives: fixed-width little-endian
//! writers, a bounds-checked [`ByteReader`], and the FNV-1a checksum used to
//! detect corrupted or truncated snapshot files.
//!
//! All integers are encoded little-endian so snapshots are byte-identical
//! across platforms.

use std::fmt;

/// Appends a `u16` in little-endian order.
#[inline]
pub fn put_u16(buf: &mut Vec<u8>, value: u16) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u32` in little-endian order.
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Error produced when a [`ByteReader`] runs out of input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ByteError {
    /// Byte offset at which the read was attempted.
    pub at: usize,
    /// Number of bytes the read needed.
    pub wanted: usize,
    /// Number of bytes that were actually available.
    pub available: usize,
}

impl fmt::Display for ByteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected end of input at byte {}: wanted {} bytes, {} available",
            self.at, self.wanted, self.available
        )
    }
}

impl std::error::Error for ByteError {}

/// A bounds-checked cursor over a byte slice, the reading counterpart of the
/// `put_*` writers.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Current byte offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns `true` if every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads `len` raw bytes.
    pub fn take_bytes(&mut self, len: usize) -> Result<&'a [u8], ByteError> {
        if self.remaining() < len {
            return Err(ByteError {
                at: self.pos,
                wanted: len,
                available: self.remaining(),
            });
        }
        let slice = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, ByteError> {
        let b = self.take_bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, ByteError> {
        let b = self.take_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, ByteError> {
        let b = self.take_bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// The 64-bit FNV-1a hash of `bytes` — the checksum used by binary
/// snapshots (and as a cheap structural fingerprint).
///
/// FNV-1a is not cryptographic; it detects accidental corruption and
/// truncation, which is all the snapshot formats need.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, 0x0123_4567_89AB_CDEF);
        assert_eq!(buf.len(), 14);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.take_u16().unwrap(), 0xBEEF);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(r.is_empty());
        assert_eq!(r.position(), 14);
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0x0102_0304);
        assert_eq!(buf, vec![0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn truncated_reads_error_with_context() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 7);
        let mut r = ByteReader::new(&buf);
        r.take_u16().unwrap();
        let err = r.take_u32().unwrap_err();
        assert_eq!(
            err,
            ByteError {
                at: 2,
                wanted: 4,
                available: 0
            }
        );
        assert!(err.to_string().contains("byte 2"));
        // The failed read does not advance the cursor.
        assert_eq!(r.position(), 2);
    }

    #[test]
    fn take_bytes_and_remaining() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r = ByteReader::new(&data);
        assert_eq!(r.take_bytes(2).unwrap(), &[1, 2]);
        assert_eq!(r.remaining(), 3);
        assert!(r.take_bytes(4).is_err());
        assert_eq!(r.take_bytes(3).unwrap(), &[3, 4, 5]);
        assert!(r.is_empty());
    }

    #[test]
    fn fnv_checksum_is_stable_and_sensitive() {
        // Reference value of FNV-1a("") is the offset basis.
        assert_eq!(fnv1a64(&[]), 0xcbf2_9ce4_8422_2325);
        let a = fnv1a64(b"frozen structure");
        let b = fnv1a64(b"frozen structurf");
        assert_ne!(a, b);
        assert_eq!(a, fnv1a64(b"frozen structure"));
    }
}
