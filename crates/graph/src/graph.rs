//! Core graph representation: an undirected, unweighted, simple graph with
//! stable vertex and edge identifiers.
//!
//! The whole FT-BFS theory of the paper is developed for undirected unweighted
//! graphs `G = (V, E)`; this module provides that substrate.  Vertices and
//! edges are identified by dense indices so that per-vertex and per-edge
//! side tables (distances, parents, tie-breaking perturbations, fault masks)
//! can be plain vectors.

use std::fmt;

/// Identifier of a vertex in a [`Graph`].
///
/// Vertex identifiers are dense: a graph with `n` vertices uses ids
/// `0..n`.  The type is a thin wrapper around `u32`, which bounds graphs to
/// about four billion vertices — far beyond anything this crate is used for.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Returns the vertex id as a `usize` index, suitable for indexing
    /// per-vertex tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a vertex id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        VertexId(u32::try_from(index).expect("vertex index exceeds u32::MAX"))
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for VertexId {
    fn from(index: usize) -> Self {
        VertexId::new(index)
    }
}

/// Identifier of an undirected edge in a [`Graph`].
///
/// Edge identifiers are dense: a graph with `m` edges uses ids `0..m`.
/// Both orientations of an undirected edge share the same id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the edge id as a `usize` index, suitable for indexing
    /// per-edge tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an edge id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32::MAX"))
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(index: usize) -> Self {
        EdgeId::new(index)
    }
}

/// The two endpoints of an undirected edge, stored with `u <= v`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Endpoints {
    /// The smaller endpoint.
    pub u: VertexId,
    /// The larger endpoint.
    pub v: VertexId,
}

impl Endpoints {
    /// Normalises a pair of endpoints so that `u <= v`.
    pub fn new(a: VertexId, b: VertexId) -> Self {
        if a <= b {
            Endpoints { u: a, v: b }
        } else {
            Endpoints { u: b, v: a }
        }
    }

    /// Returns the endpoint opposite to `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!(
                "vertex {x:?} is not an endpoint of edge ({:?},{:?})",
                self.u, self.v
            )
        }
    }

    /// Returns `true` if `x` is one of the two endpoints.
    pub fn contains(&self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }
}

/// An undirected, unweighted, simple graph.
///
/// The graph is immutable once constructed (use [`GraphBuilder`] to build
/// one incrementally).  Immutability keeps all derived structures —
/// shortest-path trees, tie-breaking weights, fault-tolerant structures —
/// valid for the lifetime of the graph.
///
/// # Examples
///
/// ```
/// use ftbfs_graph::{Graph, GraphBuilder, VertexId};
///
/// let mut builder = GraphBuilder::new(4);
/// builder.add_edge(VertexId(0), VertexId(1));
/// builder.add_edge(VertexId(1), VertexId(2));
/// builder.add_edge(VertexId(2), VertexId(3));
/// builder.add_edge(VertexId(3), VertexId(0));
/// let graph: Graph = builder.build();
///
/// assert_eq!(graph.vertex_count(), 4);
/// assert_eq!(graph.edge_count(), 4);
/// assert_eq!(graph.degree(VertexId(0)), 2);
/// ```
#[derive(Clone)]
pub struct Graph {
    n: usize,
    endpoints: Vec<Endpoints>,
    /// adjacency: for each vertex, the incident `(neighbour, edge id)` pairs,
    /// sorted by neighbour id for deterministic traversal order.
    adjacency: Vec<Vec<(VertexId, EdgeId)>>,
}

impl Graph {
    pub(crate) fn from_parts(n: usize, endpoints: Vec<Endpoints>) -> Self {
        let mut adjacency: Vec<Vec<(VertexId, EdgeId)>> = vec![Vec::new(); n];
        for (idx, ep) in endpoints.iter().enumerate() {
            let e = EdgeId::new(idx);
            adjacency[ep.u.index()].push((ep.v, e));
            adjacency[ep.v.index()].push((ep.u, e));
        }
        for list in &mut adjacency {
            list.sort_unstable_by_key(|(nbr, _)| nbr.0);
        }
        Graph {
            n,
            endpoints,
            adjacency,
        }
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.n).map(VertexId::new)
    }

    /// Iterator over all edge ids `0..m`.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.endpoints.len()).map(EdgeId::new)
    }

    /// Endpoints of edge `e` (normalised so that `u <= v`).
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a valid edge id.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> Endpoints {
        self.endpoints[e.index()]
    }

    /// Degree of vertex `v` in the graph.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v.index()].len()
    }

    /// Incident `(neighbour, edge)` pairs of `v`, sorted by neighbour id.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adjacency[v.index()]
    }

    /// Edge ids incident to `v` (the set `E(v, G)` of the paper).
    pub fn incident_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.adjacency[v.index()].iter().map(|&(_, e)| e)
    }

    /// Returns the edge id connecting `a` and `b`, if such an edge exists.
    ///
    /// Runs in `O(log deg)` via binary search on the sorted adjacency list.
    pub fn edge_between(&self, a: VertexId, b: VertexId) -> Option<EdgeId> {
        if a.index() >= self.n || b.index() >= self.n {
            return None;
        }
        let list = &self.adjacency[a.index()];
        list.binary_search_by_key(&b.0, |(nbr, _)| nbr.0)
            .ok()
            .map(|pos| list[pos].1)
    }

    /// Returns `true` if the graph has an edge between `a` and `b`.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.edge_between(a, b).is_some()
    }

    /// Returns `true` if `v` is a valid vertex id of this graph.
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.n
    }

    /// Returns `true` if `e` is a valid edge id of this graph.
    #[inline]
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        e.index() < self.endpoints.len()
    }

    /// Total size of the graph in "structure edges" — convenience used by
    /// the experiments when reporting structure sizes next to graph sizes.
    pub fn size_summary(&self) -> String {
        format!("n={} m={}", self.n, self.endpoint_count())
    }

    fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n)
            .field("m", &self.endpoints.len())
            .finish()
    }
}

/// Incremental builder for [`Graph`].
///
/// The builder silently ignores duplicate edges and self-loops, which keeps
/// random generators simple; the resulting graph is always simple.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Endpoints>,
    seen: std::collections::HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: std::collections::HashSet::new(),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Ensures the graph has at least `n` vertices.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
        }
    }

    /// Adds a fresh vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let v = VertexId::new(self.n);
        self.n += 1;
        v
    }

    /// Adds `count` fresh vertices and returns their ids.
    pub fn add_vertices(&mut self, count: usize) -> Vec<VertexId> {
        (0..count).map(|_| self.add_vertex()).collect()
    }

    /// Adds an undirected edge between `a` and `b`.
    ///
    /// Self-loops and duplicate edges are ignored.  Returns `true` if the
    /// edge was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a valid vertex of the builder.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) -> bool {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "edge endpoint out of range: ({a:?},{b:?}) with n={}",
            self.n
        );
        if a == b {
            return false;
        }
        let ep = Endpoints::new(a, b);
        if self.seen.insert((ep.u.0, ep.v.0)) {
            self.edges.push(ep);
            true
        } else {
            false
        }
    }

    /// Adds a simple path through the listed vertices (consecutive pairs
    /// become edges).
    pub fn add_path(&mut self, vertices: &[VertexId]) {
        for pair in vertices.windows(2) {
            self.add_edge(pair[0], pair[1]);
        }
    }

    /// Returns `true` if the edge `{a, b}` has already been added.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        let ep = Endpoints::new(a, b);
        self.seen.contains(&(ep.u.0, ep.v.0))
    }

    /// Finalises the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        Graph::from_parts(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(1), VertexId(2));
        b.add_edge(VertexId(2), VertexId(0));
        b.build()
    }

    #[test]
    fn vertex_and_edge_counts() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.vertices().count(), 3);
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn duplicate_edges_and_self_loops_ignored() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(VertexId(0), VertexId(1)));
        assert!(!b.add_edge(VertexId(1), VertexId(0)));
        assert!(!b.add_edge(VertexId(1), VertexId(1)));
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = triangle();
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            for pair in nbrs.windows(2) {
                assert!(pair[0].0 < pair[1].0);
            }
            for &(u, e) in nbrs {
                assert!(g.endpoints(e).contains(v));
                assert!(g.endpoints(e).contains(u));
                assert!(g.neighbors(u).iter().any(|&(w, e2)| w == v && e2 == e));
            }
        }
    }

    #[test]
    fn edge_between_lookup() {
        let g = triangle();
        assert!(g.has_edge(VertexId(0), VertexId(2)));
        assert!(g.has_edge(VertexId(2), VertexId(0)));
        let e = g.edge_between(VertexId(0), VertexId(2)).unwrap();
        assert_eq!(g.endpoints(e), Endpoints::new(VertexId(2), VertexId(0)));
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1));
        let g2 = b.build();
        assert!(!g2.has_edge(VertexId(2), VertexId(3)));
        assert_eq!(g2.edge_between(VertexId(0), VertexId(3)), None);
    }

    #[test]
    fn endpoints_other_and_contains() {
        let ep = Endpoints::new(VertexId(5), VertexId(2));
        assert_eq!(ep.u, VertexId(2));
        assert_eq!(ep.v, VertexId(5));
        assert_eq!(ep.other(VertexId(2)), VertexId(5));
        assert_eq!(ep.other(VertexId(5)), VertexId(2));
        assert!(ep.contains(VertexId(2)));
        assert!(!ep.contains(VertexId(3)));
    }

    #[test]
    #[should_panic]
    fn endpoints_other_panics_for_non_endpoint() {
        let ep = Endpoints::new(VertexId(0), VertexId(1));
        let _ = ep.other(VertexId(2));
    }

    #[test]
    fn builder_add_vertices_and_path() {
        let mut b = GraphBuilder::new(0);
        let vs = b.add_vertices(5);
        assert_eq!(vs.len(), 5);
        b.add_path(&vs);
        let g = b.build();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(vs[0]), 1);
        assert_eq!(g.degree(vs[2]), 2);
    }

    #[test]
    fn display_and_debug_formats() {
        assert_eq!(format!("{}", VertexId(7)), "7");
        assert_eq!(format!("{:?}", VertexId(7)), "v7");
        assert_eq!(format!("{}", EdgeId(3)), "3");
        assert_eq!(format!("{:?}", EdgeId(3)), "e3");
        let g = triangle();
        let dbg = format!("{g:?}");
        assert!(dbg.contains("n"));
    }

    #[test]
    fn ensure_vertices_grows_only() {
        let mut b = GraphBuilder::new(3);
        b.ensure_vertices(2);
        assert_eq!(b.vertex_count(), 3);
        b.ensure_vertices(10);
        assert_eq!(b.vertex_count(), 10);
    }
}
