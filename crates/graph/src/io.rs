//! Text edge-list parsing: one streaming parse path for every text graph
//! format the workspace reads.
//!
//! Two header dialects share the same line grammar:
//!
//! ```text
//! # comments start with '#' (legacy) ...
//! c ... or with a standalone 'c' token (DIMACS)
//! n <vertex-count>        legacy header, 0-based vertex ids
//! p sp <n> <m>            DIMACS-style header, 1-based ids, declared edge count
//! <u> <v>                 bare edge line
//! a <u> <v> [w]           DIMACS arc line (weight handled per policy)
//! e <u> <v>               DIMACS edge line
//! ```
//!
//! The parser is *streaming*: lines are fed one at a time into an
//! [`EdgeListParser`] which accumulates directly into the flat endpoint
//! arrays behind [`Graph`] — no intermediate per-line allocations, no
//! `Vec<(u, v)>` copy of the file.  File-level drivers (buffered readers,
//! the checksummed binary format, fixtures) live in the `ftbfs-corpus`
//! crate and feed the same [`GraphAccumulator`], so there is exactly one
//! ingestion path and one [`ParseError`] taxonomy for malformed text.
//!
//! [`IngestOptions`] controls the policy knobs real edge lists need:
//! optional vertex-id compaction (arbitrary `u64` ids remapped to dense
//! `0..n` in first-seen order), drop-vs-error handling for self-loops
//! and duplicate edges, and a [`WeightPolicy`] for the DIMACS weight
//! token — this substrate is unweighted, so a weighted input either has
//! its weights silently discarded ([`WeightPolicy::Keep`]) or is rejected
//! outright unless every weight is exactly `1`
//! ([`WeightPolicy::RejectNonUnit`]).  [`from_edge_list`] keeps the historical strict
//! behaviour (header required, dense ids, silent dedup) as a thin wrapper
//! over the same parser.

use crate::graph::{Endpoints, Graph, VertexId};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Errors produced when parsing the edge-list text format.
///
/// The enum is `#[non_exhaustive]`: the format intentionally stays small,
/// but new error variants (e.g. for future header extensions) may be added
/// in minor releases, so downstream `match`es must include a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The `n <count>` / `p <n> <m>` header line is missing or malformed.
    MissingHeader,
    /// A line could not be parsed as two vertex indices.
    MalformedLine {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// An edge endpoint is out of the declared vertex range.
    VertexOutOfRange {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// A self-loop edge under [`LinePolicy::Error`].
    SelfLoop {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// A repeated edge under [`LinePolicy::Error`].
    DuplicateEdge {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// A DIMACS-style header declared an edge count that does not match
    /// the number of edge lines in the input.
    EdgeCountMismatch {
        /// The count the `p` header declared.
        declared: usize,
        /// The number of edge lines actually present.
        actual: usize,
    },
    /// An arc line carried a weight other than `1` under
    /// [`WeightPolicy::RejectNonUnit`].
    NonUnitWeight {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending weight token, verbatim.
        weight: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => {
                write!(f, "missing or malformed 'n <count>' / 'p <n> <m>' header")
            }
            ParseError::MalformedLine { line } => write!(f, "malformed edge on line {line}"),
            ParseError::VertexOutOfRange { line } => {
                write!(f, "vertex index out of range on line {line}")
            }
            ParseError::SelfLoop { line } => write!(f, "self-loop edge on line {line}"),
            ParseError::DuplicateEdge { line } => write!(f, "duplicate edge on line {line}"),
            ParseError::EdgeCountMismatch { declared, actual } => write!(
                f,
                "header declared {declared} edges but the input has {actual} edge lines"
            ),
            ParseError::NonUnitWeight { line, weight } => write!(
                f,
                "non-unit edge weight {weight} on line {line} (this substrate is unweighted)"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

/// What to do with an edge line the accumulator would otherwise discard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LinePolicy {
    /// Silently drop the edge and count it in [`IngestStats`] (the
    /// historical [`GraphBuilder`](crate::GraphBuilder) behaviour).
    #[default]
    Drop,
    /// Reject the whole input with a typed error.
    Error,
}

/// What to do with the optional weight token on a DIMACS `a <u> <v> <w>`
/// arc line.
///
/// Every structure in this workspace is built over *unweighted* graphs —
/// BFS distances are hop counts — so a weighted input is only faithful
/// when every weight is `1`.  [`Keep`](WeightPolicy::Keep) preserves the
/// historical behaviour (parse the token, ingest the edge, discard the
/// weight); [`RejectNonUnit`](WeightPolicy::RejectNonUnit) refuses any
/// input whose weights the hop-count semantics would silently distort.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WeightPolicy {
    /// Accept any numeric weight token and ingest the edge unweighted
    /// (the weight is discarded).
    #[default]
    Keep,
    /// Reject the whole input with [`ParseError::NonUnitWeight`] on the
    /// first arc line whose weight is not exactly `1`.
    RejectNonUnit,
}

/// Policy knobs for an ingestion run, shared by the text parser and the
/// binary readers of `ftbfs-corpus`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestOptions {
    /// Compact arbitrary `u64` vertex ids to dense `0..n` in first-seen
    /// order.  With remapping on, a header is optional and never bounds
    /// the ids; without it, ids must be dense and in the declared range.
    pub remap: bool,
    /// Handling of `u == v` edges.
    pub self_loops: LinePolicy,
    /// Handling of repeated `{u, v}` edges.
    pub duplicates: LinePolicy,
    /// Handling of the DIMACS arc-line weight token.
    pub weights: WeightPolicy,
}

impl IngestOptions {
    /// The strict legacy options behind [`from_edge_list`]: no remapping,
    /// self-loops and duplicates silently dropped.
    #[must_use]
    pub fn strict() -> Self {
        IngestOptions::default()
    }

    /// Options for real-world edge lists: arbitrary ids remapped to dense,
    /// self-loops and duplicates dropped and counted.
    #[must_use]
    pub fn remapping() -> Self {
        IngestOptions {
            remap: true,
            ..IngestOptions::default()
        }
    }
}

/// Counters describing what an ingestion run did — the source of the
/// `ftbfs_corpus_*` ingestion metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Edges accepted into the graph.
    pub edges_added: usize,
    /// Self-loop edges dropped under [`LinePolicy::Drop`].
    pub self_loops_dropped: usize,
    /// Duplicate edges dropped under [`LinePolicy::Drop`].
    pub duplicates_dropped: usize,
    /// Distinct vertex ids whose dense id differs from their input id
    /// (only non-zero in remap mode).
    pub remapped_ids: usize,
}

impl IngestStats {
    /// Total edges rejected (dropped) by policy, the `rejected` metric.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.self_loops_dropped + self.duplicates_dropped
    }
}

/// Why [`GraphAccumulator::push_edge`] refused an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeRejection {
    /// `u == v` under [`LinePolicy::Error`].
    SelfLoop,
    /// The edge was already present under [`LinePolicy::Error`].
    Duplicate,
    /// An endpoint is not a valid vertex id (non-remap mode only).
    OutOfRange,
}

/// The shared sink every ingestion front-end feeds: text lines, binary
/// records and generators all push `(u, v)` pairs here, and the
/// accumulator applies one consistent remap/self-loop/duplicate policy
/// before building the [`Graph`].
///
/// Edges are stored as flat [`Endpoints`] arrays in arrival order (edge
/// ids are assigned by arrival), so [`finish`](Self::finish) hands the
/// arrays straight to the graph's CSR-style adjacency build without an
/// intermediate copy.
#[derive(Debug)]
pub struct GraphAccumulator {
    options: IngestOptions,
    declared: Option<usize>,
    bound: usize,
    endpoints: Vec<Endpoints>,
    seen: HashSet<(u32, u32)>,
    remap: HashMap<u64, u32>,
    stats: IngestStats,
}

impl GraphAccumulator {
    /// Creates an empty accumulator with the given policies.
    #[must_use]
    pub fn new(options: IngestOptions) -> Self {
        GraphAccumulator {
            options,
            declared: None,
            bound: 0,
            endpoints: Vec::new(),
            seen: HashSet::new(),
            remap: HashMap::new(),
            stats: IngestStats::default(),
        }
    }

    /// Declares the vertex count (from a header).  In non-remap mode this
    /// bounds the ids; in remap mode it only floors the final vertex
    /// count.
    pub fn declare_vertices(&mut self, n: usize) {
        self.declared = Some(n);
        self.bound = self.bound.max(n);
    }

    /// The declared vertex count, if a header was seen.
    #[must_use]
    pub fn declared_vertices(&self) -> Option<usize> {
        self.declared
    }

    /// Number of edges accepted so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    fn resolve(&mut self, id: u64) -> Result<u32, EdgeRejection> {
        if self.options.remap {
            let next = self.remap.len() as u32;
            let dense = *self.remap.entry(id).or_insert(next);
            if dense == next {
                // Newly assigned: count ids that moved under compaction.
                if u64::from(dense) != id {
                    self.stats.remapped_ids += 1;
                }
                self.bound = self.bound.max(dense as usize + 1);
            }
            Ok(dense)
        } else {
            let bound = self.declared.unwrap_or(usize::MAX);
            if id >= bound as u64 || id > u64::from(u32::MAX) {
                return Err(EdgeRejection::OutOfRange);
            }
            let dense = id as u32;
            if self.declared.is_none() {
                self.bound = self.bound.max(dense as usize + 1);
            }
            Ok(dense)
        }
    }

    /// Pushes one raw edge.  Returns `Ok(true)` if the edge was added,
    /// `Ok(false)` if it was dropped by policy (counted in the stats), and
    /// a typed [`EdgeRejection`] under [`LinePolicy::Error`] or for ids
    /// out of the declared range.
    pub fn push_edge(&mut self, u: u64, v: u64) -> Result<bool, EdgeRejection> {
        if u == v {
            return match self.options.self_loops {
                LinePolicy::Drop => {
                    // Resolve anyway so remap mode still registers the id.
                    self.resolve(u)?;
                    self.stats.self_loops_dropped += 1;
                    Ok(false)
                }
                LinePolicy::Error => Err(EdgeRejection::SelfLoop),
            };
        }
        let a = self.resolve(u)?;
        let b = self.resolve(v)?;
        let ep = Endpoints::new(VertexId(a), VertexId(b));
        if !self.seen.insert((ep.u.0, ep.v.0)) {
            return match self.options.duplicates {
                LinePolicy::Drop => {
                    self.stats.duplicates_dropped += 1;
                    Ok(false)
                }
                LinePolicy::Error => Err(EdgeRejection::Duplicate),
            };
        }
        self.endpoints.push(ep);
        self.stats.edges_added += 1;
        Ok(true)
    }

    /// Finalises into an immutable [`Graph`] plus the run's counters.
    #[must_use]
    pub fn finish(self) -> (Graph, IngestStats) {
        (Graph::from_parts(self.bound, self.endpoints), self.stats)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Header {
    /// No header line seen yet.
    Pending,
    /// `n <count>`: 0-based dense ids, no declared edge count.
    Legacy,
    /// `p [fmt] <n> <m>`: 1-based ids, declared edge count.
    Dimacs { declared_edges: usize },
    /// Remap mode input with no header line.
    Headerless,
}

/// The streaming text parser: feed lines, then [`finish`](Self::finish).
///
/// ```
/// use ftbfs_graph::io::{EdgeListParser, IngestOptions};
///
/// let mut parser = EdgeListParser::new(IngestOptions::strict());
/// for line in "p sp 3 2\na 1 2\na 2 3".lines() {
///     parser.feed_line(line).unwrap();
/// }
/// let (graph, stats) = parser.finish().unwrap();
/// assert_eq!(graph.vertex_count(), 3);
/// assert_eq!(stats.edges_added, 2);
/// ```
#[derive(Debug)]
pub struct EdgeListParser {
    acc: GraphAccumulator,
    header: Header,
    line: usize,
    edge_lines: usize,
}

impl EdgeListParser {
    /// Creates a parser with the given ingestion options.
    #[must_use]
    pub fn new(options: IngestOptions) -> Self {
        EdgeListParser {
            acc: GraphAccumulator::new(options),
            header: Header::Pending,
            line: 0,
            edge_lines: 0,
        }
    }

    /// 1-based number of the line most recently fed.
    #[must_use]
    pub fn line_number(&self) -> usize {
        self.line
    }

    /// Edges accepted so far (duplicates and self-loops excluded).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.acc.edge_count()
    }

    fn parse_header(&mut self, tokens: &[&str]) -> Result<bool, ParseError> {
        match *tokens {
            ["n", count] => {
                let n: usize = count.parse().map_err(|_| ParseError::MissingHeader)?;
                self.acc.declare_vertices(n);
                self.header = Header::Legacy;
                Ok(true)
            }
            ["p", n, m] | ["p", _, n, m] => {
                let n: usize = n.parse().map_err(|_| ParseError::MissingHeader)?;
                let m: usize = m.parse().map_err(|_| ParseError::MissingHeader)?;
                self.acc.declare_vertices(n);
                self.header = Header::Dimacs { declared_edges: m };
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Feeds one raw input line (with or without its trailing newline).
    ///
    /// Errors identify the offending 1-based line number; after an error
    /// the parser should be discarded.
    pub fn feed_line(&mut self, raw: &str) -> Result<(), ParseError> {
        self.line += 1;
        let line_no = self.line;
        let line = raw.trim();
        // Comment dialects: '#' (legacy) and a standalone leading 'c'
        // token (DIMACS comment lines are free text after the 'c').
        if line.is_empty() || line.starts_with('#') {
            return Ok(());
        }
        if line == "c" || line.starts_with("c ") || line.starts_with("c\t") {
            return Ok(());
        }
        // Longest meaningful line is four tokens (`p sp <n> <m>` or
        // `a <u> <v> <w>`): gather into a fixed array so the hot loop
        // allocates nothing per line.
        let mut toks: [&str; 4] = [""; 4];
        let mut count = 0usize;
        for t in line.split_whitespace() {
            if count == toks.len() {
                count += 1; // overflow marker: more than four tokens
                break;
            }
            toks[count] = t;
            count += 1;
        }
        let mut tokens = &toks[..count.min(toks.len())];
        let overflowed = count > toks.len();
        if self.header == Header::Pending {
            if !overflowed && self.parse_header(tokens)? {
                return Ok(());
            }
            if self.acc.options.remap {
                // Real-world lists often have no header; with remapping on
                // the ids carry all the information a header would.
                self.header = Header::Headerless;
            } else {
                return Err(ParseError::MissingHeader);
            }
        }
        if overflowed {
            return Err(ParseError::MalformedLine { line: line_no });
        }
        // Edge line: optional 'a'/'e' tag, two ids, and (in the DIMACS
        // dialect only) an optional numeric weight token, handled per
        // [`WeightPolicy`].
        if tokens.len() >= 3 && (tokens[0] == "a" || tokens[0] == "e") {
            tokens = &tokens[1..];
        }
        let dimacs = matches!(self.header, Header::Dimacs { .. });
        let (u, v) = match *tokens {
            [u, v] => (u, v),
            [u, v, w] if dimacs => {
                let Ok(weight) = w.parse::<f64>() else {
                    return Err(ParseError::MalformedLine { line: line_no });
                };
                if self.acc.options.weights == WeightPolicy::RejectNonUnit && weight != 1.0 {
                    return Err(ParseError::NonUnitWeight {
                        line: line_no,
                        weight: w.to_string(),
                    });
                }
                (u, v)
            }
            _ => return Err(ParseError::MalformedLine { line: line_no }),
        };
        let mut u: u64 = u
            .parse()
            .map_err(|_| ParseError::MalformedLine { line: line_no })?;
        let mut v: u64 = v
            .parse()
            .map_err(|_| ParseError::MalformedLine { line: line_no })?;
        if dimacs && !self.acc.options.remap {
            // DIMACS ids are 1-based; shift to the dense 0-based space.
            if u == 0 || v == 0 {
                return Err(ParseError::VertexOutOfRange { line: line_no });
            }
            u -= 1;
            v -= 1;
        }
        self.edge_lines += 1;
        self.acc.push_edge(u, v).map_err(|r| match r {
            EdgeRejection::SelfLoop => ParseError::SelfLoop { line: line_no },
            EdgeRejection::Duplicate => ParseError::DuplicateEdge { line: line_no },
            EdgeRejection::OutOfRange => ParseError::VertexOutOfRange { line: line_no },
        })?;
        Ok(())
    }

    /// Finalises the parse, checking the whole-input invariants (header
    /// present, DIMACS declared edge count matches).
    pub fn finish(self) -> Result<(Graph, IngestStats), ParseError> {
        match self.header {
            Header::Pending if !self.acc.options.remap => return Err(ParseError::MissingHeader),
            Header::Dimacs { declared_edges } if declared_edges != self.edge_lines => {
                return Err(ParseError::EdgeCountMismatch {
                    declared: declared_edges,
                    actual: self.edge_lines,
                });
            }
            _ => {}
        }
        Ok(self.acc.finish())
    }
}

/// Serialises a graph to the legacy edge-list text format.
pub fn to_edge_list(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", graph.vertex_count());
    for e in graph.edges() {
        let ep = graph.endpoints(e);
        let _ = writeln!(out, "{} {}", ep.u.0, ep.v.0);
    }
    out
}

/// Parses a graph from the edge-list text format — a thin wrapper over
/// [`EdgeListParser`] with the strict legacy options (header required,
/// dense 0-based ids, self-loops and duplicates silently dropped).
pub fn from_edge_list(text: &str) -> Result<Graph, ParseError> {
    parse_edge_list(text, IngestOptions::strict()).map(|(g, _)| g)
}

/// Parses an in-memory edge list with explicit [`IngestOptions`],
/// returning the graph together with the run's [`IngestStats`].
pub fn parse_edge_list(
    text: &str,
    options: IngestOptions,
) -> Result<(Graph, IngestStats), ParseError> {
    let mut parser = EdgeListParser::new(options);
    for line in text.lines() {
        parser.feed_line(line)?;
    }
    parser.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_preserves_structure() {
        let g = generators::grid(3, 4);
        let text = to_edge_list(&g);
        let h = from_edge_list(&text).unwrap();
        assert_eq!(g.vertex_count(), h.vertex_count());
        assert_eq!(g.edge_count(), h.edge_count());
        for e in g.edges() {
            let ep = g.endpoints(e);
            assert!(h.has_edge(ep.u, ep.v));
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# a comment\n\nn 3\n0 1\n# another\n1 2\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn error_cases() {
        assert_eq!(from_edge_list("").unwrap_err(), ParseError::MissingHeader);
        assert_eq!(
            from_edge_list("x 3\n").unwrap_err(),
            ParseError::MissingHeader
        );
        assert_eq!(
            from_edge_list("n 3\n0\n").unwrap_err(),
            ParseError::MalformedLine { line: 2 }
        );
        assert_eq!(
            from_edge_list("n 3\n0 7\n").unwrap_err(),
            ParseError::VertexOutOfRange { line: 2 }
        );
        assert_eq!(
            from_edge_list("n 2\n0 a\n").unwrap_err(),
            ParseError::MalformedLine { line: 2 }
        );
    }

    #[test]
    fn error_display_messages() {
        let e = ParseError::MalformedLine { line: 4 };
        assert!(e.to_string().contains("line 4"));
        assert!(ParseError::MissingHeader.to_string().contains("header"));
        assert!(ParseError::VertexOutOfRange { line: 9 }
            .to_string()
            .contains("line 9"));
        assert!(ParseError::SelfLoop { line: 3 }.to_string().contains("3"));
        assert!(ParseError::DuplicateEdge { line: 5 }
            .to_string()
            .contains("5"));
        assert!(ParseError::EdgeCountMismatch {
            declared: 7,
            actual: 6
        }
        .to_string()
        .contains("7"));
        let w = ParseError::NonUnitWeight {
            line: 2,
            weight: "10".to_string(),
        };
        assert!(w.to_string().contains("line 2"));
        assert!(w.to_string().contains("10"));
    }

    #[test]
    fn errors_are_std_errors_and_clone_eq_roundtrip() {
        // Each variant survives a clone/eq round trip and implements
        // `std::error::Error` (so it can ride in `Box<dyn Error>`).
        let variants = [
            ParseError::MissingHeader,
            ParseError::MalformedLine { line: 2 },
            ParseError::VertexOutOfRange { line: 3 },
            ParseError::SelfLoop { line: 4 },
            ParseError::DuplicateEdge { line: 5 },
            ParseError::EdgeCountMismatch {
                declared: 3,
                actual: 2,
            },
            ParseError::NonUnitWeight {
                line: 6,
                weight: "2.5".to_string(),
            },
        ];
        for v in &variants {
            assert_eq!(v, &v.clone());
            let boxed: Box<dyn std::error::Error> = Box::new(v.clone());
            assert_eq!(boxed.to_string(), v.to_string());
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn serialisation_is_idempotent() {
        // parse(to_edge_list(g)) re-serialises to the identical text: the
        // writer emits edges in id order and the parser assigns ids in
        // input order, so the format is a canonical fixed point.
        let g = generators::connected_gnp(20, 0.2, 8);
        let text = to_edge_list(&g);
        let reparsed = from_edge_list(&text).unwrap();
        assert_eq!(to_edge_list(&reparsed), text);
    }

    #[test]
    fn dimacs_dialect_one_based_ids_and_weights() {
        let text = "c a DIMACS-style file\np sp 4 3\na 1 2 10\na 2 3 5\ne 3 4\n";
        let (g, stats) = parse_edge_list(text, IngestOptions::strict()).unwrap();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(2), VertexId(3)));
        assert_eq!(stats.edges_added, 3);

        // Short p-header form without the format token.
        let (h, _) = parse_edge_list("p 3 1\n1 3\n", IngestOptions::strict()).unwrap();
        assert!(h.has_edge(VertexId(0), VertexId(2)));

        // 1-based means id 0 is out of range, as is n+1.
        assert_eq!(
            parse_edge_list("p 3 1\n0 2\n", IngestOptions::strict()).unwrap_err(),
            ParseError::VertexOutOfRange { line: 2 }
        );
        assert_eq!(
            parse_edge_list("p 3 1\n1 4\n", IngestOptions::strict()).unwrap_err(),
            ParseError::VertexOutOfRange { line: 2 }
        );
    }

    #[test]
    fn dimacs_declared_edge_count_is_checked() {
        assert_eq!(
            parse_edge_list("p 3 2\n1 2\n", IngestOptions::strict()).unwrap_err(),
            ParseError::EdgeCountMismatch {
                declared: 2,
                actual: 1
            }
        );
        // Dropped duplicates still count as edge lines: the declared count
        // speaks about the file, not the deduplicated graph.
        let (g, stats) =
            parse_edge_list("p 3 3\n1 2\n2 1\n2 3\n", IngestOptions::strict()).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(stats.duplicates_dropped, 1);
    }

    #[test]
    fn weight_token_requires_dimacs_dialect() {
        // Legacy headers keep the strict two-token grammar.
        assert_eq!(
            parse_edge_list("n 3\n0 1 9\n", IngestOptions::strict()).unwrap_err(),
            ParseError::MalformedLine { line: 2 }
        );
        // And a non-numeric weight is malformed even in DIMACS mode.
        assert_eq!(
            parse_edge_list("p 3 1\na 1 2 x\n", IngestOptions::strict()).unwrap_err(),
            ParseError::MalformedLine { line: 2 }
        );
    }

    #[test]
    fn weight_policy_keep_discards_and_reject_nonunit_is_typed() {
        let weighted = "p sp 3 2\na 1 2 10\na 2 3 1\n";
        let reject = IngestOptions {
            weights: WeightPolicy::RejectNonUnit,
            ..IngestOptions::strict()
        };

        // Keep (the default) ingests the edges and discards the weights.
        let (g, stats) = parse_edge_list(weighted, IngestOptions::strict()).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(stats.edges_added, 2);

        // RejectNonUnit refuses the first non-unit weight, verbatim.
        assert_eq!(
            parse_edge_list(weighted, reject).unwrap_err(),
            ParseError::NonUnitWeight {
                line: 2,
                weight: "10".to_string(),
            }
        );

        // All-unit weights pass even under the strict policy, whatever
        // the spelling of "one".
        let unit = "p sp 3 2\na 1 2 1\na 2 3 1.0\n";
        let (h, _) = parse_edge_list(unit, reject).unwrap();
        assert_eq!(h.edge_count(), 2);

        // Weightless arc lines are untouched by the policy.
        let bare = "p sp 3 2\na 1 2\na 2 3\n";
        let (b, _) = parse_edge_list(bare, reject).unwrap();
        assert_eq!(b.edge_count(), 2);
    }

    #[test]
    fn remap_compacts_sparse_ids() {
        let text = "# no header at all\n1000000007 42\n42 999\n1000000007 999\n";
        let (g, stats) = parse_edge_list(text, IngestOptions::remapping()).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        // First-seen order: 1000000007 → 0, 42 → 1, 999 → 2.
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(2)));
        assert!(g.has_edge(VertexId(0), VertexId(2)));
        assert_eq!(stats.remapped_ids, 3, "all three ids moved");

        // Without remapping the same input has no header.
        assert_eq!(
            parse_edge_list(text, IngestOptions::strict()).unwrap_err(),
            ParseError::MissingHeader
        );
    }

    #[test]
    fn remap_with_header_floors_vertex_count() {
        let (g, _) = parse_edge_list("n 10\n7 8\n", IngestOptions::remapping()).unwrap();
        // Ids 7 and 8 remap to 0 and 1, but the header keeps n = 10.
        assert_eq!(g.vertex_count(), 10);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
    }

    #[test]
    fn policies_drop_or_error() {
        let text = "n 3\n0 1\n1 1\n0 1\n";
        let (g, stats) = parse_edge_list(text, IngestOptions::strict()).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(stats.self_loops_dropped, 1);
        assert_eq!(stats.duplicates_dropped, 1);
        assert_eq!(stats.rejected(), 2);

        let strict_loops = IngestOptions {
            self_loops: LinePolicy::Error,
            ..IngestOptions::strict()
        };
        assert_eq!(
            parse_edge_list(text, strict_loops).unwrap_err(),
            ParseError::SelfLoop { line: 3 }
        );
        let strict_dups = IngestOptions {
            duplicates: LinePolicy::Error,
            ..IngestOptions::strict()
        };
        assert_eq!(
            parse_edge_list(text, strict_dups).unwrap_err(),
            ParseError::DuplicateEdge { line: 4 }
        );
    }

    #[test]
    fn accumulator_is_usable_standalone() {
        let mut acc = GraphAccumulator::new(IngestOptions::strict());
        acc.declare_vertices(4);
        assert!(acc.push_edge(0, 1).unwrap());
        assert!(acc.push_edge(1, 2).unwrap());
        assert!(!acc.push_edge(2, 1).unwrap(), "duplicate dropped");
        assert_eq!(acc.push_edge(0, 9), Err(EdgeRejection::OutOfRange));
        assert_eq!(
            acc.push_edge(0, u64::from(u32::MAX) + 1),
            Err(EdgeRejection::OutOfRange)
        );
        let (g, stats) = acc.finish();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(stats.edges_added, 2);
        assert_eq!(stats.duplicates_dropped, 1);
    }

    #[test]
    fn streaming_parser_reports_position() {
        let mut p = EdgeListParser::new(IngestOptions::strict());
        p.feed_line("n 2").unwrap();
        p.feed_line("0 1").unwrap();
        assert_eq!(p.line_number(), 2);
        assert_eq!(p.edge_count(), 1);
    }
}
