//! A minimal text edge-list format for saving and loading graphs.
//!
//! The format is line oriented:
//!
//! ```text
//! # comments start with '#'
//! n <vertex-count>
//! <u> <v>
//! <u> <v>
//! ...
//! ```
//!
//! It exists so that experiment inputs/outputs can be inspected and rerun;
//! it is intentionally not a general-purpose interchange format.

use crate::graph::{Graph, GraphBuilder, VertexId};
use std::fmt::Write as _;

/// Errors produced when parsing the edge-list format.
///
/// The enum is `#[non_exhaustive]`: the format intentionally stays small,
/// but new error variants (e.g. for future header extensions) may be added
/// in minor releases, so downstream `match`es must include a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The `n <count>` header line is missing or malformed.
    MissingHeader,
    /// A line could not be parsed as two vertex indices.
    MalformedLine {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// An edge endpoint is out of the declared vertex range.
    VertexOutOfRange {
        /// 1-based line number of the offending line.
        line: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing or malformed 'n <count>' header"),
            ParseError::MalformedLine { line } => write!(f, "malformed edge on line {line}"),
            ParseError::VertexOutOfRange { line } => {
                write!(f, "vertex index out of range on line {line}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialises a graph to the edge-list text format.
pub fn to_edge_list(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", graph.vertex_count());
    for e in graph.edges() {
        let ep = graph.endpoints(e);
        let _ = writeln!(out, "{} {}", ep.u.0, ep.v.0);
    }
    out
}

/// Parses a graph from the edge-list text format.
pub fn from_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut builder: Option<GraphBuilder> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if builder.is_none() {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some("n"), Some(count), None) => {
                    let n: usize = count.parse().map_err(|_| ParseError::MissingHeader)?;
                    builder = Some(GraphBuilder::new(n));
                    continue;
                }
                _ => return Err(ParseError::MissingHeader),
            }
        }
        let b = builder.as_mut().expect("builder initialised above");
        let mut parts = line.split_whitespace();
        let (u, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(v), None) => (u, v),
            _ => return Err(ParseError::MalformedLine { line: line_no }),
        };
        let u: usize = u
            .parse()
            .map_err(|_| ParseError::MalformedLine { line: line_no })?;
        let v: usize = v
            .parse()
            .map_err(|_| ParseError::MalformedLine { line: line_no })?;
        if u >= b.vertex_count() || v >= b.vertex_count() {
            return Err(ParseError::VertexOutOfRange { line: line_no });
        }
        b.add_edge(VertexId::new(u), VertexId::new(v));
    }
    builder
        .map(GraphBuilder::build)
        .ok_or(ParseError::MissingHeader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_preserves_structure() {
        let g = generators::grid(3, 4);
        let text = to_edge_list(&g);
        let h = from_edge_list(&text).unwrap();
        assert_eq!(g.vertex_count(), h.vertex_count());
        assert_eq!(g.edge_count(), h.edge_count());
        for e in g.edges() {
            let ep = g.endpoints(e);
            assert!(h.has_edge(ep.u, ep.v));
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# a comment\n\nn 3\n0 1\n# another\n1 2\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn error_cases() {
        assert_eq!(from_edge_list("").unwrap_err(), ParseError::MissingHeader);
        assert_eq!(
            from_edge_list("x 3\n").unwrap_err(),
            ParseError::MissingHeader
        );
        assert_eq!(
            from_edge_list("n 3\n0\n").unwrap_err(),
            ParseError::MalformedLine { line: 2 }
        );
        assert_eq!(
            from_edge_list("n 3\n0 7\n").unwrap_err(),
            ParseError::VertexOutOfRange { line: 2 }
        );
        assert_eq!(
            from_edge_list("n 2\n0 a\n").unwrap_err(),
            ParseError::MalformedLine { line: 2 }
        );
    }

    #[test]
    fn error_display_messages() {
        let e = ParseError::MalformedLine { line: 4 };
        assert!(e.to_string().contains("line 4"));
        assert!(ParseError::MissingHeader.to_string().contains("header"));
        assert!(ParseError::VertexOutOfRange { line: 9 }
            .to_string()
            .contains("line 9"));
    }

    #[test]
    fn errors_are_std_errors_and_clone_eq_roundtrip() {
        // Each variant survives a clone/eq round trip and implements
        // `std::error::Error` (so it can ride in `Box<dyn Error>`).
        let variants = [
            ParseError::MissingHeader,
            ParseError::MalformedLine { line: 2 },
            ParseError::VertexOutOfRange { line: 3 },
        ];
        for v in &variants {
            assert_eq!(v, &v.clone());
            let boxed: Box<dyn std::error::Error> = Box::new(v.clone());
            assert_eq!(boxed.to_string(), v.to_string());
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn serialisation_is_idempotent() {
        // parse(to_edge_list(g)) re-serialises to the identical text: the
        // writer emits edges in id order and the parser assigns ids in
        // input order, so the format is a canonical fixed point.
        let g = generators::connected_gnp(20, 0.2, 8);
        let text = to_edge_list(&g);
        let reparsed = from_edge_list(&text).unwrap();
        assert_eq!(to_edge_list(&reparsed), text);
    }
}
