//! Graph generators used as workloads by the tests, examples and experiment
//! harness.
//!
//! Three families are provided:
//!
//! * [`structured`] — deterministic graphs (paths, cycles, grids, complete
//!   and complete-bipartite graphs, stars, balanced binary trees);
//! * [`random`] — Erdős–Rényi `G(n, p)` / `G(n, m)` graphs and connected
//!   variants, random trees with extra chords;
//! * [`hub`] — cluster/hub graphs whose optimal FT-BFS structures are sparse,
//!   used by the approximation experiments (E3).
//!
//! Everything is re-exported at this level so callers can simply write
//! `generators::gnp(...)`.

pub mod hub;
pub mod random;
pub mod structured;

pub use hub::{cluster_graph, hub_and_spokes};
pub use random::{connected_gnp, gnm, gnp, random_tree, tree_plus_chords};
pub use structured::{balanced_binary_tree, complete, complete_bipartite, cycle, grid, path, star};
