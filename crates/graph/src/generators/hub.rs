//! Cluster and hub graphs.
//!
//! These families have sparse (near-linear) optimal FT-BFS structures while
//! still containing many edges, which is exactly the regime where the
//! `O(log n)` approximation of Section 5 beats the worst-case-optimal
//! `Cons2FTBFS` construction.  They are the workload of experiment E3.

use crate::graph::{Graph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A hub-and-spokes graph: `hubs` fully-interconnected hub vertices, each
/// spoke vertex connected to `attach` distinct hubs.  Vertex `0..hubs` are
/// hubs, the rest are spokes.
///
/// # Panics
///
/// Panics if `hubs == 0` or `attach == 0` or `attach > hubs`.
pub fn hub_and_spokes(hubs: usize, spokes: usize, attach: usize, seed: u64) -> Graph {
    assert!(
        hubs > 0 && attach > 0 && attach <= hubs,
        "invalid hub parameters"
    );
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(hubs + spokes);
    for i in 0..hubs {
        for j in (i + 1)..hubs {
            b.add_edge(VertexId::new(i), VertexId::new(j));
        }
    }
    for s in 0..spokes {
        let spoke = VertexId::new(hubs + s);
        let mut chosen = std::collections::HashSet::new();
        while chosen.len() < attach {
            chosen.insert(r.gen_range(0..hubs));
        }
        for h in chosen {
            b.add_edge(spoke, VertexId::new(h));
        }
    }
    b.build()
}

/// A cluster graph: `clusters` dense clusters of `cluster_size` vertices each
/// (every intra-cluster pair is an edge with probability `intra_p`), chained
/// together by `bridges` parallel bridge edges between consecutive clusters.
///
/// Vertex ids are assigned cluster by cluster.
///
/// # Panics
///
/// Panics if any size parameter is zero or `bridges > cluster_size`.
pub fn cluster_graph(
    clusters: usize,
    cluster_size: usize,
    intra_p: f64,
    bridges: usize,
    seed: u64,
) -> Graph {
    assert!(
        clusters > 0 && cluster_size > 0,
        "cluster parameters must be positive"
    );
    assert!(
        bridges > 0 && bridges <= cluster_size,
        "bridges must be in 1..=cluster_size"
    );
    assert!(
        (0.0..=1.0).contains(&intra_p),
        "probability must lie in [0,1]"
    );
    let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0x5A5A_5A5A);
    let n = clusters * cluster_size;
    let mut b = GraphBuilder::new(n);
    let vid = |c: usize, i: usize| VertexId::new(c * cluster_size + i);
    for c in 0..clusters {
        // A spanning path keeps each cluster connected regardless of `intra_p`.
        for i in 0..cluster_size.saturating_sub(1) {
            b.add_edge(vid(c, i), vid(c, i + 1));
        }
        for i in 0..cluster_size {
            for j in (i + 1)..cluster_size {
                if r.gen_bool(intra_p) {
                    b.add_edge(vid(c, i), vid(c, j));
                }
            }
        }
    }
    for c in 0..clusters.saturating_sub(1) {
        for k in 0..bridges {
            b.add_edge(vid(c, k), vid(c + 1, k));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::is_connected;

    #[test]
    fn hub_graph_shape() {
        let g = hub_and_spokes(4, 20, 2, 1);
        assert_eq!(g.vertex_count(), 24);
        assert!(is_connected(&g));
        // hub clique edges + 2 per spoke
        assert_eq!(g.edge_count(), 6 + 40);
        for s in 4..24 {
            assert_eq!(g.degree(VertexId::new(s)), 2);
        }
    }

    #[test]
    fn hub_graph_deterministic() {
        let a = hub_and_spokes(3, 10, 2, 9);
        let b = hub_and_spokes(3, 10, 2, 9);
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    #[should_panic]
    fn hub_graph_invalid_attach() {
        let _ = hub_and_spokes(2, 5, 3, 0);
    }

    #[test]
    fn cluster_graph_shape() {
        let g = cluster_graph(3, 8, 0.5, 2, 4);
        assert_eq!(g.vertex_count(), 24);
        assert!(is_connected(&g));
        // at least the spanning paths and bridges
        assert!(g.edge_count() >= 3 * 7 + 2 * 2);
    }

    #[test]
    fn cluster_graph_connected_even_with_zero_intra_probability() {
        let g = cluster_graph(4, 5, 0.0, 1, 11);
        assert!(is_connected(&g));
        assert_eq!(g.edge_count(), 4 * 4 + 3);
    }
}
