//! Deterministic structured graph generators.

use crate::graph::{Graph, GraphBuilder, VertexId};

/// A simple path on `n` vertices (`n - 1` edges), vertices numbered along
/// the path.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path requires at least one vertex");
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        b.add_edge(VertexId::new(i), VertexId::new(i + 1));
    }
    b.build()
}

/// A cycle on `n ≥ 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires at least three vertices");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(VertexId::new(i), VertexId::new((i + 1) % n));
    }
    b.build()
}

/// An `rows × cols` grid graph; vertex `(r, c)` has id `r * cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                b.add_edge(VertexId::new(id), VertexId::new(id + 1));
            }
            if r + 1 < rows {
                b.add_edge(VertexId::new(id), VertexId::new(id + cols));
            }
        }
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(VertexId::new(i), VertexId::new(j));
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}`; the first `a` ids form one side.
pub fn complete_bipartite(a: usize, b_size: usize) -> Graph {
    let mut b = GraphBuilder::new(a + b_size);
    for i in 0..a {
        for j in 0..b_size {
            b.add_edge(VertexId::new(i), VertexId::new(a + j));
        }
    }
    b.build()
}

/// A star with `n` leaves (vertex 0 is the centre, `n + 1` vertices total).
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n + 1);
    for i in 0..n {
        b.add_edge(VertexId::new(0), VertexId::new(i + 1));
    }
    b.build()
}

/// A balanced binary tree with the given number of `levels` (a single root
/// for `levels == 1`).  Vertex `i`'s children are `2i + 1` and `2i + 2`.
///
/// # Panics
///
/// Panics if `levels == 0`.
pub fn balanced_binary_tree(levels: u32) -> Graph {
    assert!(levels > 0, "tree must have at least one level");
    let n = (1usize << levels) - 1;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        let left = 2 * i + 1;
        let right = 2 * i + 2;
        if left < n {
            b.add_edge(VertexId::new(i), VertexId::new(left));
        }
        if right < n {
            b.add_edge(VertexId::new(i), VertexId::new(right));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::is_connected;

    #[test]
    fn path_counts() {
        let g = path(10);
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.degree(VertexId(0)), 1);
        assert_eq!(g.degree(VertexId(5)), 2);
        assert!(is_connected(&g));
        assert_eq!(path(1).edge_count(), 0);
    }

    #[test]
    fn cycle_counts() {
        let g = cycle(7);
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 7);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_counts() {
        let g = grid(4, 5);
        assert_eq!(g.vertex_count(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 5 * 3);
        assert!(is_connected(&g));
        assert_eq!(g.degree(VertexId(0)), 2);
    }

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 5);
        }
    }

    #[test]
    fn bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.degree(VertexId(0)), 4);
        assert_eq!(g.degree(VertexId(3)), 3);
        assert!(!g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(0), VertexId(3)));
    }

    #[test]
    fn star_counts() {
        let g = star(5);
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(VertexId(0)), 5);
    }

    #[test]
    fn binary_tree_counts() {
        let g = balanced_binary_tree(4);
        assert_eq!(g.vertex_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(is_connected(&g));
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.degree(VertexId(14)), 1);
    }

    #[test]
    #[should_panic]
    fn zero_path_panics() {
        let _ = path(0);
    }

    #[test]
    #[should_panic]
    fn tiny_cycle_panics() {
        let _ = cycle(2);
    }
}
