//! Random graph generators (Erdős–Rényi and random trees), all seeded and
//! deterministic given the seed.

use crate::graph::{Graph, GraphBuilder, VertexId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Erdős–Rényi graph `G(n, p)`: every unordered pair is an edge independently
/// with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability must lie in [0,1]");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if r.gen_bool(p) {
                b.add_edge(VertexId::new(i), VertexId::new(j));
            }
        }
    }
    b.build()
}

/// Erdős–Rényi graph `G(n, m)`: exactly `m` distinct edges drawn uniformly at
/// random (or all edges if `m` exceeds the number of pairs).
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let total_pairs = n * n.saturating_sub(1) / 2;
    let m = m.min(total_pairs);
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    if total_pairs == 0 {
        return b.build();
    }
    // For sparse requests, rejection-sample; for dense requests, shuffle all pairs.
    if m * 3 < total_pairs {
        while b.edge_count() < m {
            let i = r.gen_range(0..n);
            let j = r.gen_range(0..n);
            if i != j {
                b.add_edge(VertexId::new(i), VertexId::new(j));
            }
        }
    } else {
        let mut pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        pairs.shuffle(&mut r);
        for (i, j) in pairs.into_iter().take(m) {
            b.add_edge(VertexId::new(i), VertexId::new(j));
        }
    }
    b.build()
}

/// A uniformly random labelled tree on `n` vertices (via a random Prüfer-like
/// attachment: vertex `i` attaches to a uniformly random earlier vertex after
/// a random relabelling).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut r);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let j = r.gen_range(0..i);
        b.add_edge(VertexId::new(order[i]), VertexId::new(order[j]));
    }
    b.build()
}

/// A connected Erdős–Rényi-style graph: a random spanning tree plus each
/// remaining pair independently with probability `p`.
pub fn connected_gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability must lie in [0,1]");
    let mut r = rng(seed ^ 0xABCD_EF01);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut r);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let j = r.gen_range(0..i);
        b.add_edge(VertexId::new(order[i]), VertexId::new(order[j]));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if r.gen_bool(p) {
                b.add_edge(VertexId::new(i), VertexId::new(j));
            }
        }
    }
    b.build()
}

/// A random tree plus `chords` uniformly random extra edges.  These graphs
/// have sparse optimal FT-BFS structures and are the main workload of the
/// approximation experiment (E3).
pub fn tree_plus_chords(n: usize, chords: usize, seed: u64) -> Graph {
    let mut r = rng(seed ^ 0x1357_9BDF);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut r);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let j = r.gen_range(0..i);
        b.add_edge(VertexId::new(order[i]), VertexId::new(order[j]));
    }
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = chords * 20 + 100;
    while added < chords && attempts < max_attempts {
        attempts += 1;
        let i = r.gen_range(0..n);
        let j = r.gen_range(0..n);
        if i != j && b.add_edge(VertexId::new(i), VertexId::new(j)) {
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::is_connected;

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = gnp(30, 0.2, 7);
        let b = gnp(30, 0.2, 7);
        assert_eq!(a.edge_count(), b.edge_count());
        for e in a.edges() {
            assert_eq!(a.endpoints(e), b.endpoints(e));
        }
        let c = gnp(30, 0.2, 8);
        // Overwhelmingly likely to differ.
        assert!(
            a.edge_count() != c.edge_count() || {
                a.edges().any(|e| a.endpoints(e) != c.endpoints(e))
            }
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp(10, 1.0, 1).edge_count(), 45);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(20, 30, 3);
        assert_eq!(g.edge_count(), 30);
        // Request more than possible: capped.
        let h = gnm(5, 100, 3);
        assert_eq!(h.edge_count(), 10);
        // Dense request path.
        let d = gnm(10, 40, 5);
        assert_eq!(d.edge_count(), 40);
    }

    #[test]
    fn random_tree_is_spanning_tree() {
        for seed in 0..5 {
            let g = random_tree(40, seed);
            assert_eq!(g.edge_count(), 39);
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn connected_gnp_is_connected() {
        for seed in 0..5 {
            let g = connected_gnp(50, 0.05, seed);
            assert!(is_connected(&g));
            assert!(g.edge_count() >= 49);
        }
    }

    #[test]
    fn tree_plus_chords_counts() {
        let g = tree_plus_chords(60, 15, 2);
        assert!(is_connected(&g));
        assert_eq!(g.edge_count(), 59 + 15);
    }
}
