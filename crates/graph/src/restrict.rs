//! The restricted graphs of Eq. (3) and Eq. (4) of the paper.
//!
//! * `G(u_k, u_ℓ) = (G ∖ V(π(u_k, u_ℓ))) ∪ {u_k, v}` — remove the interior of
//!   the shortest-path segment between `u_k` and `u_ℓ` (keeping `u_k` itself
//!   and the target `v`), so that any surviving `s–v` path must diverge from
//!   `π(s, v)` at `u_k` or above.
//! * `G_D(w_ℓ) = (G(x_τ, v) ∖ V(D_τ[w_ℓ, y_τ])) ∪ {w_ℓ}` — additionally
//!   remove the suffix of a detour from `w_ℓ` on (keeping `w_ℓ`), so that any
//!   surviving path diverges from the detour at `w_ℓ` or above.
//!
//! Both are expressed in two equivalent forms: as owned [`GraphView`]s over
//! the base graph (the `*_restricted` builders, convenient for one-off use
//! and tests), and as mark sequences on a reusable epoch-stamped
//! [`ViewOverlay`] (the `overlay_*` builders), which is what the
//! binary-search predicates of `ftbfs-paths::select` use so that probing a
//! candidate divergence point allocates nothing.

use crate::fault::{FaultSet, GraphView, ViewOverlay};
use crate::graph::{Graph, VertexId};
use crate::path::Path;

/// Marks the Eq. (3) removal `V(π[from_pos, to_pos]) ∖ {π[from_pos], target}`
/// on `overlay`: every vertex of the path segment between the two positions
/// is removed except the segment's upper endpoint and the target.
///
/// The overlay must have been [`ViewOverlay::begin`]-started for the graph
/// `pi` lives in; positions index into `pi.vertices()`.
///
/// # Panics
///
/// Panics if either position is out of range for `pi`.
pub fn overlay_pi_segment(
    overlay: &mut ViewOverlay,
    pi: &Path,
    from_pos: usize,
    to_pos: usize,
    target: VertexId,
) {
    let (lo, hi) = if from_pos <= to_pos {
        (from_pos, to_pos)
    } else {
        (to_pos, from_pos)
    };
    let from = pi.vertices()[from_pos];
    for &x in &pi.vertices()[lo..=hi] {
        if x != from && x != target {
            overlay.remove_vertex(x);
        }
    }
}

/// Marks the Eq. (4) removal `V(D[from_pos, …]) ∖ {D[from_pos], target}` on
/// `overlay`: the suffix of the detour from the given position on is
/// removed, keeping the divergence vertex itself and the target.
///
/// # Panics
///
/// Panics if `from_pos` is out of range for `detour`.
pub fn overlay_detour_suffix(
    overlay: &mut ViewOverlay,
    detour: &Path,
    from_pos: usize,
    target: VertexId,
) {
    let from = detour.vertices()[from_pos];
    for &x in &detour.vertices()[from_pos..] {
        if x != from && x != target {
            overlay.remove_vertex(x);
        }
    }
}

/// Builds the restricted graph `G(u_k, u_ℓ)` of Eq. (3).
///
/// `pi` must be the canonical path `π(s, v)` (or any path containing the
/// segment), `from` is `u_k`, `to` is `u_ℓ`, and `target` is the vertex `v`
/// that must stay in the graph even if it lies on the removed segment.
/// The removed vertex set is `V(π(u_k, u_ℓ)) ∖ {u_k, v}`.
pub fn pi_segment_restricted<'g>(
    graph: &'g Graph,
    pi: &Path,
    from: VertexId,
    to: VertexId,
    target: VertexId,
) -> GraphView<'g> {
    let segment = pi.subpath(from, to);
    let removed: Vec<VertexId> = segment
        .vertices()
        .iter()
        .copied()
        .filter(|&x| x != from && x != target)
        .collect();
    GraphView::new(graph).without_vertices(removed)
}

/// Builds the restricted graph `G(u_k, u_ℓ) ∖ F`: the Eq. (3) graph with a
/// fault set additionally removed.  This is the graph in which step (1) and
/// step (3) of `Cons2FTBFS` search for replacement paths with a prescribed
/// earliest divergence point.
pub fn pi_segment_restricted_without<'g>(
    graph: &'g Graph,
    pi: &Path,
    from: VertexId,
    to: VertexId,
    target: VertexId,
    faults: &FaultSet,
) -> GraphView<'g> {
    pi_segment_restricted(graph, pi, from, to, target).without_faults(faults)
}

/// Builds the restricted graph `G_D(w_ℓ)` of Eq. (4): starting from
/// `G(x_τ, v)` (expressed by `base`), remove the detour suffix
/// `D_τ[w_ℓ, y_τ]` except the vertex `w_ℓ` itself (and never remove
/// `target`).
pub fn detour_suffix_restricted<'g>(
    base: GraphView<'g>,
    detour: &Path,
    from: VertexId,
    target: VertexId,
) -> GraphView<'g> {
    let suffix = detour.suffix(from);
    let removed: Vec<VertexId> = suffix
        .vertices()
        .iter()
        .copied()
        .filter(|&x| x != from && x != target)
        .collect();
    base.without_vertices(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::graph::{GraphBuilder, VertexId};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// A path 0-1-2-3-4 plus a parallel "detour" 0-5-6-4 and a chord 1-6.
    fn test_graph() -> Graph {
        let mut b = GraphBuilder::new(7);
        b.add_path(&[v(0), v(1), v(2), v(3), v(4)]);
        b.add_path(&[v(0), v(5), v(6), v(4)]);
        b.add_edge(v(1), v(6));
        b.build()
    }

    #[test]
    fn pi_segment_interior_removed() {
        let g = test_graph();
        let pi = Path::new(vec![v(0), v(1), v(2), v(3), v(4)]);
        // Remove interior of pi[1,3]: vertices 2 and 3 go, 1 stays, 4 (target) stays.
        let view = pi_segment_restricted(&g, &pi, v(1), v(3), v(4));
        assert!(view.allows_vertex(v(1)));
        assert!(!view.allows_vertex(v(2)));
        assert!(!view.allows_vertex(v(3)));
        assert!(view.allows_vertex(v(4)));
        // 4 is still reachable from 0 via the detour 0-5-6-4.
        let res = bfs(&view, v(0));
        assert_eq!(res.distance(v(4)), Some(3));
    }

    #[test]
    fn pi_segment_keeps_target_when_on_segment() {
        let g = test_graph();
        let pi = Path::new(vec![v(0), v(1), v(2), v(3), v(4)]);
        let view = pi_segment_restricted(&g, &pi, v(1), v(4), v(4));
        assert!(view.allows_vertex(v(4)));
        assert!(!view.allows_vertex(v(3)));
        // Any surviving s-4 path must diverge from pi at 1 or above.
        let res = bfs(&view, v(0));
        let p = res.path_to(v(4)).unwrap();
        assert!(!p.contains_vertex(v(2)));
        assert!(!p.contains_vertex(v(3)));
    }

    #[test]
    fn pi_segment_with_faults() {
        let g = test_graph();
        let pi = Path::new(vec![v(0), v(1), v(2), v(3), v(4)]);
        let e05 = g.edge_between(v(0), v(5)).unwrap();
        let view = pi_segment_restricted_without(&g, &pi, v(1), v(4), v(4), &FaultSet::single(e05));
        // Without 0-5 and the pi interior, route is 0-1-6-4.
        let res = bfs(&view, v(0));
        assert_eq!(res.distance(v(4)), Some(3));
        let p = res.path_to(v(4)).unwrap();
        assert!(p.contains_vertex(v(6)));
    }

    #[test]
    fn detour_suffix_removal() {
        let g = test_graph();
        let detour = Path::new(vec![v(0), v(5), v(6), v(4)]);
        let base = GraphView::new(&g);
        // Remove the detour suffix from 5 on (but keep 5 and the target 4).
        let view = detour_suffix_restricted(base, &detour, v(5), v(4));
        assert!(view.allows_vertex(v(5)));
        assert!(!view.allows_vertex(v(6)));
        assert!(view.allows_vertex(v(4)));
        let res = bfs(&view, v(0));
        // 4 reachable only along the pi path now.
        assert_eq!(res.distance(v(4)), Some(4));
    }

    #[test]
    fn overlay_builders_match_view_builders() {
        use crate::fault::Restriction;
        let g = test_graph();
        let pi = Path::new(vec![v(0), v(1), v(2), v(3), v(4)]);
        let detour = Path::new(vec![v(1), v(6), v(4)]);
        let view = {
            let base = pi_segment_restricted(&g, &pi, v(1), v(4), v(4));
            detour_suffix_restricted(base, &detour, v(6), v(4))
        };
        let mut overlay = ViewOverlay::new();
        overlay.begin(&g);
        overlay_pi_segment(&mut overlay, &pi, 1, 4, v(4));
        overlay_detour_suffix(&mut overlay, &detour, 1, v(4));
        let oview = overlay.view(&g);
        for x in g.vertices() {
            assert_eq!(view.allows_vertex(x), Restriction::allows_vertex(&oview, x));
        }
        for e in g.edges() {
            assert_eq!(view.allows_edge(e), Restriction::allows_edge(&oview, e));
        }
    }

    #[test]
    fn detour_suffix_composes_with_pi_restriction() {
        let g = test_graph();
        let pi = Path::new(vec![v(0), v(1), v(2), v(3), v(4)]);
        let detour = Path::new(vec![v(1), v(6), v(4)]);
        // G(1, v): remove pi interior below 1.
        let base = pi_segment_restricted(&g, &pi, v(1), v(4), v(4));
        // Additionally remove the detour suffix from 6 on.
        let view = detour_suffix_restricted(base, &detour, v(6), v(4));
        assert!(view.allows_vertex(v(6)));
        assert!(!view.allows_vertex(v(2)));
        // The only surviving route to 4 diverges from the detour at 6... but
        // the detour edge (6,4) is still allowed since only vertices after 6
        // are removed and 4 is the kept target.
        let res = bfs(&view, v(0));
        assert_eq!(res.distance(v(4)), Some(3));
    }
}
