//! CSR fingerprints: cheap structural digests for golden tests and
//! cross-format ingestion checks.
//!
//! [`ftbfs_graph::Graph`] already stores its adjacency in compressed
//! sparse row form — ingestion parses *straight into* that CSR via
//! [`ftbfs_graph::io::GraphAccumulator`].  What the corpus layer adds is
//! a canonical 64-bit digest over the structure: the FNV-1a hash of
//! `(n, m)` followed by every edge's `(min, max)` endpoint pair in
//! sorted order.  The digest depends only on the vertex count and the
//! edge *set* — not on edge insertion order — so the same graph ingested
//! from a text file and from a binary file fingerprints identically even
//! if the files list edges differently.

use ftbfs_graph::bytes::Fnv1a;
use ftbfs_graph::Graph;

/// Summary of an ingested CSR structure, as pinned by golden tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CsrSummary {
    /// Vertex count `n`.
    pub vertices: usize,
    /// Edge count `m`.
    pub edges: usize,
    /// Order-insensitive structural digest — see [`csr_fingerprint`].
    pub fingerprint: u64,
}

/// The canonical structural fingerprint of `graph` (see module docs).
pub fn csr_fingerprint(graph: &Graph) -> u64 {
    let mut pairs: Vec<(u32, u32)> = graph
        .edges()
        .map(|e| {
            let ep = graph.endpoints(e);
            (ep.u.0, ep.v.0)
        })
        .collect();
    pairs.sort_unstable();
    let mut digest = Fnv1a::new()
        .update(&(graph.vertex_count() as u64).to_le_bytes())
        .update(&(graph.edge_count() as u64).to_le_bytes());
    for (u, v) in pairs {
        digest = digest.update(&u.to_le_bytes()).update(&v.to_le_bytes());
    }
    digest.finish()
}

/// Builds the [`CsrSummary`] of `graph`.
pub fn csr_summary(graph: &Graph) -> CsrSummary {
    CsrSummary {
        vertices: graph.vertex_count(),
        edges: graph.edge_count(),
        fingerprint: csr_fingerprint(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::{generators, GraphBuilder, VertexId};

    #[test]
    fn fingerprint_is_insensitive_to_edge_order() {
        let mut a = GraphBuilder::new(4);
        a.add_edge(VertexId(0), VertexId(1));
        a.add_edge(VertexId(2), VertexId(3));
        a.add_edge(VertexId(1), VertexId(2));
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(1), VertexId(2));
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(3), VertexId(2));
        assert_eq!(csr_fingerprint(&a.build()), csr_fingerprint(&b.build()));
    }

    #[test]
    fn fingerprint_is_sensitive_to_structure() {
        let grid = generators::grid(4, 4);
        let cycle = generators::cycle(16);
        assert_ne!(csr_fingerprint(&grid), csr_fingerprint(&cycle));
        // Same edges, one extra isolated vertex: different digest.
        let mut a = GraphBuilder::new(3);
        a.add_edge(VertexId(0), VertexId(1));
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1));
        assert_ne!(csr_fingerprint(&a.build()), csr_fingerprint(&b.build()));
    }

    #[test]
    fn summary_reports_sizes() {
        let g = generators::grid(3, 5);
        let s = csr_summary(&g);
        assert_eq!(s.vertices, 15);
        assert_eq!(s.edges, g.edge_count());
        assert_eq!(s.fingerprint, csr_fingerprint(&g));
    }
}
