//! The corpus error taxonomy.
//!
//! Ingestion never panics on bad input: every malformed byte, truncated
//! file or policy violation surfaces as a typed [`CorpusError`].  Text
//! parsing delegates to `ftbfs_graph::io` and wraps its
//! [`ParseError`] unchanged, so callers see exactly one taxonomy whether
//! they parse an in-memory string or ingest a multi-megabyte file.

use ftbfs_graph::io::{EdgeRejection, ParseError};
use std::fmt;

/// An error produced while ingesting a corpus graph (text or binary).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CorpusError {
    /// A text edge-list parse error (shared taxonomy with
    /// [`ftbfs_graph::io::from_edge_list`]).
    Parse(ParseError),
    /// An I/O error while reading or writing a corpus file.  Only the
    /// [`std::io::ErrorKind`] is kept so the error stays `Clone + Eq`.
    Io(std::io::ErrorKind),
    /// The binary file does not start with the `FTBG` magic.
    BadMagic,
    /// The binary file declares a format version this reader does not
    /// understand.
    UnsupportedVersion(u16),
    /// The binary file sets header flags this reader does not understand.
    UnsupportedFlags(u16),
    /// The input ended before the declared records and trailing checksum
    /// were read; `at` is the byte offset at which input ran out.
    Truncated {
        /// Byte offset at which the input ended.
        at: usize,
    },
    /// The trailing FNV-1a checksum does not match the bytes that were
    /// read — the file is corrupt.
    ChecksumMismatch {
        /// Checksum stored in the file.
        expected: u64,
        /// Checksum recomputed over the bytes actually read.
        actual: u64,
    },
    /// Bytes remain after the trailing checksum.
    TrailingBytes {
        /// Number of unexpected trailing bytes (lower bound when the
        /// source is a stream).
        count: usize,
    },
    /// A binary edge record was rejected under the active
    /// [`ftbfs_graph::io::IngestOptions`] policies.
    Record {
        /// Zero-based index of the offending record.
        index: usize,
        /// Why the record was rejected.
        rejection: EdgeRejection,
    },
    /// The binary header declares more vertices or edges than this build
    /// supports (`u32` ids).
    HeaderOverflow,
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Parse(e) => write!(f, "text parse error: {e}"),
            CorpusError::Io(kind) => write!(f, "i/o error: {kind:?}"),
            CorpusError::BadMagic => write!(f, "not an FTBG binary graph (bad magic)"),
            CorpusError::UnsupportedVersion(v) => {
                write!(f, "unsupported FTBG format version {v}")
            }
            CorpusError::UnsupportedFlags(flags) => {
                write!(f, "unsupported FTBG header flags {flags:#06x}")
            }
            CorpusError::Truncated { at } => {
                write!(f, "truncated FTBG input at byte {at}")
            }
            CorpusError::ChecksumMismatch { expected, actual } => write!(
                f,
                "FTBG checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
            ),
            CorpusError::TrailingBytes { count } => {
                write!(f, "{count} unexpected byte(s) after the FTBG checksum")
            }
            CorpusError::Record { index, rejection } => {
                let what = match rejection {
                    EdgeRejection::SelfLoop => "self-loop",
                    EdgeRejection::Duplicate => "duplicate edge",
                    EdgeRejection::OutOfRange => "endpoint out of range",
                };
                write!(f, "binary edge record {index}: {what}")
            }
            CorpusError::HeaderOverflow => {
                write!(f, "FTBG header declares sizes beyond u32 id space")
            }
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for CorpusError {
    fn from(e: ParseError) -> Self {
        CorpusError::Parse(e)
    }
}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        CorpusError::Io(e.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(CorpusError, &str)> = vec![
            (CorpusError::BadMagic, "magic"),
            (CorpusError::UnsupportedVersion(9), "version 9"),
            (CorpusError::UnsupportedFlags(3), "0x0003"),
            (CorpusError::Truncated { at: 12 }, "byte 12"),
            (
                CorpusError::ChecksumMismatch {
                    expected: 1,
                    actual: 2,
                },
                "checksum mismatch",
            ),
            (CorpusError::TrailingBytes { count: 3 }, "3 unexpected"),
            (
                CorpusError::Record {
                    index: 7,
                    rejection: EdgeRejection::SelfLoop,
                },
                "record 7",
            ),
            (CorpusError::HeaderOverflow, "u32"),
            (CorpusError::Io(std::io::ErrorKind::NotFound), "NotFound"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn conversions_preserve_cause() {
        let parse = ParseError::MalformedLine { line: 3 };
        let err: CorpusError = parse.clone().into();
        assert_eq!(err, CorpusError::Parse(parse));
        let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "nope");
        assert_eq!(
            CorpusError::from(io),
            CorpusError::Io(std::io::ErrorKind::PermissionDenied)
        );
    }
}
