//! Named, serializable fault-scenario suites.
//!
//! A [`ScenarioSuite`] is a recorded sequence of
//! [`FaultSpec`]s with a name, a kind and the seed it was derived from —
//! the corpus currency that benchmarks and integration tests run by
//! name.  Four builders cover the fault models the dual-failure
//! structure must survive:
//!
//! * [`correlated_spatial`] — both faults of every pair drawn from edges
//!   internal to one quad-tree region (a flooded district, not two
//!   independent coin flips);
//! * [`bridge_adversarial`] — genuine 2-cuts: an edge `e` paired with a
//!   bridge of `G ∖ {e}` found by the biconnected-components pass
//!   ([`ftbfs_graph::properties::bridges_under`]), so the pair actually
//!   disconnects something;
//! * [`hub_targeted`] — both faults incident to one high-degree hub;
//! * [`replay_sequence`] — a deterministic mixed stream of none/one/pair
//!   specs for bit-for-bit replay testing.
//!
//! Suites serialize to a line-oriented text format with a trailing
//! FNV-1a checksum ([`ScenarioSuite::to_text`] /
//! [`ScenarioSuite::from_text`]); parsing is total — malformed input
//! yields a typed [`SuiteError`], never a panic.  Rebuilding a suite
//! from the same `(generator inputs, seed)` reproduces it exactly.

use crate::gen::EmbeddedGraph;
use crate::quad::QuadTree;
use ftbfs_graph::bytes::Fnv1a;
use ftbfs_graph::properties::bridges_under;
use ftbfs_graph::{EdgeId, FaultSet, FaultSpec, Graph};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// The fault model a suite was built under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScenarioKind {
    /// Spatially correlated pairs from one quad-tree region.
    CorrelatedSpatial,
    /// Bridge/2-cut adversarial pairs.
    BridgeAdversarial,
    /// Pairs incident to one high-degree hub.
    HubTargeted,
    /// A deterministic mixed replay sequence.
    Replay,
}

impl ScenarioKind {
    /// The stable text-format identifier of this kind.
    pub fn slug(self) -> &'static str {
        match self {
            ScenarioKind::CorrelatedSpatial => "correlated-spatial",
            ScenarioKind::BridgeAdversarial => "bridge-adversarial",
            ScenarioKind::HubTargeted => "hub-targeted",
            ScenarioKind::Replay => "replay",
        }
    }

    /// Parses a [`slug`](Self::slug) back into a kind.
    pub fn from_slug(slug: &str) -> Option<Self> {
        Some(match slug {
            "correlated-spatial" => ScenarioKind::CorrelatedSpatial,
            "bridge-adversarial" => ScenarioKind::BridgeAdversarial,
            "hub-targeted" => ScenarioKind::HubTargeted,
            "replay" => ScenarioKind::Replay,
            _ => return None,
        })
    }
}

/// A named, seeded, serializable sequence of fault specifications.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioSuite {
    /// Suite name (a single whitespace-free token).
    pub name: String,
    /// The fault model the suite encodes.
    pub kind: ScenarioKind,
    /// Seed the suite was derived from (replaying with the same
    /// generator inputs and this seed reproduces the suite exactly).
    pub seed: u64,
    /// The recorded fault specifications, in execution order.
    pub faults: Vec<FaultSpec>,
}

/// Error parsing or validating a serialized scenario suite.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SuiteError {
    /// The input does not start with the `ftbfs-suite v1` header.
    MissingHeader,
    /// A line could not be parsed (1-based line number).
    MalformedLine {
        /// 1-based offending line.
        line: usize,
    },
    /// A required field line is missing or out of order.
    MissingField(&'static str),
    /// The `kind` field names no known scenario kind.
    UnknownKind,
    /// The `faults <count>` declaration disagrees with the fault lines.
    CountMismatch {
        /// Declared count.
        declared: usize,
        /// Fault lines actually present.
        actual: usize,
    },
    /// The trailing checksum does not match the preceding lines.
    ChecksumMismatch {
        /// Checksum stored in the file.
        expected: u64,
        /// Checksum recomputed from the lines read.
        actual: u64,
    },
    /// A fault references an edge id outside the target graph.
    EdgeOutOfRange {
        /// Index of the offending fault spec.
        spec: usize,
        /// The out-of-range edge id.
        edge: u32,
    },
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::MissingHeader => write!(f, "missing `ftbfs-suite v1` header"),
            SuiteError::MalformedLine { line } => write!(f, "malformed suite line {line}"),
            SuiteError::MissingField(field) => write!(f, "missing suite field `{field}`"),
            SuiteError::UnknownKind => write!(f, "unknown scenario kind"),
            SuiteError::CountMismatch { declared, actual } => write!(
                f,
                "suite declares {declared} fault(s) but contains {actual}"
            ),
            SuiteError::ChecksumMismatch { expected, actual } => write!(
                f,
                "suite checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
            ),
            SuiteError::EdgeOutOfRange { spec, edge } => {
                write!(f, "fault spec {spec} references unknown edge {edge}")
            }
        }
    }
}

impl std::error::Error for SuiteError {}

/// The first line of every serialized suite.
const SUITE_HEADER: &str = "ftbfs-suite v1";

impl ScenarioSuite {
    /// Serializes the suite to its checksummed text format.
    ///
    /// # Panics
    ///
    /// Panics if the suite name is empty or contains whitespace (builder
    /// names are slugs, so this only fires on hand-built suites).
    pub fn to_text(&self) -> String {
        assert!(
            !self.name.is_empty() && !self.name.chars().any(char::is_whitespace),
            "suite names must be single whitespace-free tokens"
        );
        let mut s = String::new();
        s.push_str(SUITE_HEADER);
        s.push('\n');
        s.push_str(&format!("name {}\n", self.name));
        s.push_str(&format!("kind {}\n", self.kind.slug()));
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("faults {}\n", self.faults.len()));
        for spec in &self.faults {
            s.push('f');
            for e in spec.iter() {
                s.push_str(&format!(" {}", e.0));
            }
            s.push('\n');
        }
        let digest = Fnv1a::new().update(s.as_bytes()).finish();
        s.push_str(&format!("checksum {digest:016x}\n"));
        s
    }

    /// Parses a serialized suite, verifying the trailing checksum.
    ///
    /// The checksum is computed over the lines before it joined with
    /// `\n` (so CRLF input round-trips); any structural problem returns
    /// a typed [`SuiteError`].
    pub fn from_text(text: &str) -> Result<Self, SuiteError> {
        let mut digest = Fnv1a::new();
        let mut lines = text.lines().enumerate();

        let (_, header) = lines.next().ok_or(SuiteError::MissingHeader)?;
        if header.trim_end() != SUITE_HEADER {
            return Err(SuiteError::MissingHeader);
        }
        digest = digest.update(header.as_bytes()).update(b"\n");

        let field = |lines: &mut std::iter::Enumerate<std::str::Lines<'_>>,
                     digest: &mut Fnv1a,
                     key: &'static str|
         -> Result<(usize, String), SuiteError> {
            let (idx, line) = lines.next().ok_or(SuiteError::MissingField(key))?;
            *digest = digest.update(line.as_bytes()).update(b"\n");
            let mut parts = line.split_whitespace();
            if parts.next() != Some(key) {
                return Err(SuiteError::MissingField(key));
            }
            let value = parts
                .next()
                .ok_or(SuiteError::MalformedLine { line: idx + 1 })?;
            if parts.next().is_some() {
                return Err(SuiteError::MalformedLine { line: idx + 1 });
            }
            Ok((idx, value.to_string()))
        };

        let (_, name) = field(&mut lines, &mut digest, "name")?;
        let (kind_line, kind_slug) = field(&mut lines, &mut digest, "kind")?;
        let kind = ScenarioKind::from_slug(&kind_slug).ok_or(SuiteError::UnknownKind)?;
        let (seed_line, seed_text) = field(&mut lines, &mut digest, "seed")?;
        let seed: u64 = seed_text.parse().map_err(|_| SuiteError::MalformedLine {
            line: seed_line + 1,
        })?;
        let (count_line, count_text) = field(&mut lines, &mut digest, "faults")?;
        let declared: usize = count_text.parse().map_err(|_| SuiteError::MalformedLine {
            line: count_line + 1,
        })?;
        let _ = kind_line;

        let mut faults = Vec::with_capacity(declared.min(1 << 20));
        let mut checksum: Option<(usize, u64)> = None;
        for (idx, line) in lines {
            let line = line.trim_end();
            if let Some(rest) = line.strip_prefix("checksum ") {
                let stored = u64::from_str_radix(rest.trim(), 16)
                    .map_err(|_| SuiteError::MalformedLine { line: idx + 1 })?;
                checksum = Some((idx, stored));
                break;
            }
            digest = digest.update(line.as_bytes()).update(b"\n");
            let mut parts = line.split_whitespace();
            if parts.next() != Some("f") {
                return Err(SuiteError::MalformedLine { line: idx + 1 });
            }
            let mut edges: Vec<EdgeId> = Vec::new();
            for tok in parts {
                let id: u32 = tok
                    .parse()
                    .map_err(|_| SuiteError::MalformedLine { line: idx + 1 })?;
                edges.push(EdgeId(id));
            }
            faults.push(FaultSpec::from_edges(edges));
        }
        let (_, stored) = checksum.ok_or(SuiteError::MissingField("checksum"))?;
        let actual = digest.finish();
        if stored != actual {
            return Err(SuiteError::ChecksumMismatch {
                expected: stored,
                actual,
            });
        }
        if faults.len() != declared {
            return Err(SuiteError::CountMismatch {
                declared,
                actual: faults.len(),
            });
        }
        Ok(ScenarioSuite {
            name,
            kind,
            seed,
            faults,
        })
    }

    /// Checks that every referenced edge exists in `graph`.
    pub fn validate_for(&self, graph: &Graph) -> Result<(), SuiteError> {
        let m = graph.edge_count() as u32;
        for (spec_idx, spec) in self.faults.iter().enumerate() {
            for e in spec.iter() {
                if e.0 >= m {
                    return Err(SuiteError::EdgeOutOfRange {
                        spec: spec_idx,
                        edge: e.0,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Builds the correlated-spatial suite: each pair's two faults are
/// distinct edges internal to one quad-tree leaf region.
///
/// Regions with fewer than two internal edges are skipped; if no region
/// qualifies the suite is empty (no lattice-free embedding does this in
/// practice).
pub fn correlated_spatial(
    embedded: &EmbeddedGraph,
    tree: &QuadTree,
    pairs: usize,
    seed: u64,
) -> ScenarioSuite {
    let graph = &embedded.graph;
    let mut region_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); tree.leaf_count()];
    for e in graph.edges() {
        let ep = graph.endpoints(e);
        let (lu, lv) = (tree.leaf_of(ep.u.index()), tree.leaf_of(ep.v.index()));
        if lu == lv {
            region_edges[lu].push(e);
        }
    }
    let eligible: Vec<&Vec<EdgeId>> = region_edges.iter().filter(|r| r.len() >= 2).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut faults = Vec::with_capacity(pairs);
    if !eligible.is_empty() {
        for _ in 0..pairs {
            let region = eligible[rng.gen_range(0..eligible.len())];
            let a = region[rng.gen_range(0..region.len())];
            let b = loop {
                let b = region[rng.gen_range(0..region.len())];
                if b != a {
                    break b;
                }
            };
            faults.push(FaultSpec::from((a, b)));
        }
    }
    ScenarioSuite {
        name: ScenarioKind::CorrelatedSpatial.slug().to_string(),
        kind: ScenarioKind::CorrelatedSpatial,
        seed,
        faults,
    }
}

/// Builds the bridge-adversarial suite: each pair `{e, b}` is a genuine
/// 2-cut, with `b` a bridge of `G ∖ {e}` found by the
/// biconnected-components pass.
///
/// Candidate edges alternate between edges incident to the graph's
/// weakest vertices (degree ≤ 2 — on lattices these are the only spots
/// where removing one edge creates a bridge, and uniform sampling would
/// essentially never find them) and uniformly random edges.  Sampling
/// retries until enough 2-cuts are found or an attempt budget
/// (`20 · pairs + 50`) runs out, so 2-edge-connected graphs cannot loop
/// forever; the suite may then hold fewer pairs.
pub fn bridge_adversarial(graph: &Graph, pairs: usize, seed: u64) -> ScenarioSuite {
    let m = graph.edge_count();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weak_edges: Vec<EdgeId> = graph
        .vertices()
        .filter(|&v| graph.degree(v) <= 2)
        .flat_map(|v| graph.incident_edges(v))
        .collect();
    let mut faults = Vec::with_capacity(pairs);
    let mut attempts = 0usize;
    while faults.len() < pairs && attempts < 20 * pairs + 50 && m >= 2 {
        attempts += 1;
        let e = if !weak_edges.is_empty() && attempts % 2 == 0 {
            weak_edges[rng.gen_range(0..weak_edges.len())]
        } else {
            EdgeId(rng.gen_range(0..m) as u32)
        };
        let cut_partners = bridges_under(graph, &FaultSet::single(e));
        if cut_partners.is_empty() {
            continue;
        }
        let b = cut_partners[rng.gen_range(0..cut_partners.len())];
        faults.push(FaultSpec::from((e, b)));
    }
    ScenarioSuite {
        name: ScenarioKind::BridgeAdversarial.slug().to_string(),
        kind: ScenarioKind::BridgeAdversarial,
        seed,
        faults,
    }
}

/// Builds the hub-targeted suite: both faults of each pair are incident
/// to one of the `hub_count` highest-degree vertices.
pub fn hub_targeted(graph: &Graph, hub_count: usize, pairs: usize, seed: u64) -> ScenarioSuite {
    let mut by_degree: Vec<_> = graph.vertices().collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    let hubs: Vec<_> = by_degree
        .into_iter()
        .take(hub_count.max(1))
        .filter(|&v| graph.degree(v) >= 2)
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut faults = Vec::with_capacity(pairs);
    if !hubs.is_empty() {
        for _ in 0..pairs {
            let hub = hubs[rng.gen_range(0..hubs.len())];
            let incident = graph.neighbors(hub);
            let (_, a) = incident[rng.gen_range(0..incident.len())];
            let b = loop {
                let (_, b) = incident[rng.gen_range(0..incident.len())];
                if b != a {
                    break b;
                }
            };
            faults.push(FaultSpec::from((a, b)));
        }
    }
    ScenarioSuite {
        name: ScenarioKind::HubTargeted.slug().to_string(),
        kind: ScenarioKind::HubTargeted,
        seed,
        faults,
    }
}

/// Builds the replay suite: a deterministic mixed stream of
/// none/one/pair fault specs (≈20 % fault-free, 40 % single, 40 % dual)
/// whose whole purpose is bit-for-bit reproducibility from `seed`.
pub fn replay_sequence(graph: &Graph, len: usize, seed: u64) -> ScenarioSuite {
    let m = graph.edge_count();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut faults = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = rng.gen_range(0..10u32);
        let spec = if roll < 2 || m == 0 {
            FaultSpec::None
        } else if roll < 6 || m == 1 {
            FaultSpec::One(EdgeId(rng.gen_range(0..m) as u32))
        } else {
            let a = EdgeId(rng.gen_range(0..m) as u32);
            let b = EdgeId(rng.gen_range(0..m) as u32);
            FaultSpec::from((a, b))
        };
        faults.push(spec);
    }
    ScenarioSuite {
        name: ScenarioKind::Replay.slug().to_string(),
        kind: ScenarioKind::Replay,
        seed,
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::road_like;
    use ftbfs_graph::{bfs, generators, GraphView, VertexId};

    fn sample_suite() -> ScenarioSuite {
        ScenarioSuite {
            name: "demo".to_string(),
            kind: ScenarioKind::Replay,
            seed: 42,
            faults: vec![
                FaultSpec::None,
                FaultSpec::One(EdgeId(3)),
                FaultSpec::Pair(EdgeId(1), EdgeId(7)),
                FaultSpec::from_edges([EdgeId(0), EdgeId(2), EdgeId(9)]),
            ],
        }
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let suite = sample_suite();
        let text = suite.to_text();
        let back = ScenarioSuite::from_text(&text).expect("roundtrip");
        assert_eq!(back, suite);
        // Serialization itself is deterministic.
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn crlf_input_roundtrips() {
        let text = sample_suite().to_text().replace('\n', "\r\n");
        assert_eq!(ScenarioSuite::from_text(&text).unwrap(), sample_suite());
    }

    #[test]
    fn malformed_suites_yield_typed_errors() {
        let good = sample_suite().to_text();
        assert_eq!(ScenarioSuite::from_text(""), Err(SuiteError::MissingHeader));
        assert_eq!(
            ScenarioSuite::from_text("ftbfs-suite v2\n"),
            Err(SuiteError::MissingHeader)
        );
        let kindless = good.replace("kind replay", "kind nonsense");
        assert_eq!(
            ScenarioSuite::from_text(&kindless),
            Err(SuiteError::UnknownKind)
        );
        // Flipping a fault id breaks the checksum.
        let tampered = good.replace("f 3\n", "f 4\n");
        assert!(matches!(
            ScenarioSuite::from_text(&tampered),
            Err(SuiteError::ChecksumMismatch { .. })
        ));
        // Dropping a fault line breaks the checksum before the count.
        let shorter = good.replace("f 3\n", "");
        assert!(matches!(
            ScenarioSuite::from_text(&shorter),
            Err(SuiteError::ChecksumMismatch { .. })
        ));
        // No checksum line at all.
        let unchecked = good.lines().take(6).collect::<Vec<_>>().join("\n");
        assert_eq!(
            ScenarioSuite::from_text(&unchecked),
            Err(SuiteError::MissingField("checksum"))
        );
    }

    #[test]
    fn validation_bounds_edges() {
        let g = generators::cycle(5);
        let mut suite = sample_suite();
        assert_eq!(
            suite.validate_for(&g),
            Err(SuiteError::EdgeOutOfRange { spec: 2, edge: 7 })
        );
        suite.faults.truncate(2);
        assert_eq!(suite.validate_for(&g), Ok(()));
    }

    #[test]
    fn correlated_pairs_stay_in_one_region() {
        let g = road_like(14, 14, 12, 9);
        let qt = QuadTree::build(&g.coords, 12);
        let suite = correlated_spatial(&g, &qt, 24, 5);
        assert_eq!(suite.faults.len(), 24);
        for spec in &suite.faults {
            let edges: Vec<EdgeId> = spec.iter().collect();
            assert_eq!(edges.len(), 2, "correlated specs are pairs");
            let leaves: Vec<usize> = edges
                .iter()
                .flat_map(|&e| {
                    let ep = g.graph.endpoints(e);
                    [qt.leaf_of(ep.u.index()), qt.leaf_of(ep.v.index())]
                })
                .collect();
            assert!(
                leaves.iter().all(|&l| l == leaves[0]),
                "faults span regions: {leaves:?}"
            );
        }
        // Deterministic in the seed.
        assert_eq!(suite, correlated_spatial(&g, &qt, 24, 5));
        assert_ne!(suite, correlated_spatial(&g, &qt, 24, 6));
    }

    #[test]
    fn bridge_adversarial_pairs_disconnect() {
        // A cycle through a few chords: plenty of 2-cuts.
        let g = generators::cycle(30);
        let suite = bridge_adversarial(&g, 6, 3);
        assert!(!suite.faults.is_empty());
        for spec in &suite.faults {
            let faults = spec.to_fault_set();
            assert_eq!(faults.len(), 2);
            let res = bfs(&GraphView::new(&g).without_faults(&faults), VertexId(0));
            assert!(
                res.reached_count() < g.vertex_count(),
                "2-cut {spec:?} failed to disconnect the cycle"
            );
        }
        assert_eq!(suite, bridge_adversarial(&g, 6, 3));
    }

    #[test]
    fn hub_targeted_pairs_share_a_hub() {
        let g = generators::star(10);
        let suite = hub_targeted(&g, 1, 8, 1);
        assert_eq!(suite.faults.len(), 8);
        for spec in &suite.faults {
            // Every edge of a star is incident to the hub; a pair of
            // distinct star edges always shares vertex 0.
            assert_eq!(spec.len(), 2);
        }
        assert_eq!(suite, hub_targeted(&g, 1, 8, 1));
    }

    #[test]
    fn replay_sequences_are_reproducible_and_mixed() {
        let g = generators::grid(6, 6);
        let suite = replay_sequence(&g, 200, 77);
        assert_eq!(suite.faults.len(), 200);
        assert_eq!(suite, replay_sequence(&g, 200, 77));
        assert_ne!(suite, replay_sequence(&g, 200, 78));
        let nones = suite.faults.iter().filter(|s| s.is_empty()).count();
        let pairs = suite.faults.iter().filter(|s| s.len() == 2).count();
        assert!(nones > 0 && pairs > 0, "mix of fault sizes expected");
        suite.validate_for(&g).expect("edges in range");
        // And the serialized form round-trips losslessly.
        let back = ScenarioSuite::from_text(&suite.to_text()).unwrap();
        assert_eq!(back, suite);
    }
}
