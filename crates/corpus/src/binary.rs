//! The `FTBG` checksummed binary edge-list format.
//!
//! Text edge lists are for eyeballing; multi-megabyte corpus graphs ship
//! as compact binary files.  The layout reuses the little-endian
//! conventions of [`ftbfs_graph::bytes`] (every integer is LE; decoding
//! goes through `from_le_bytes`, never native reinterpretation):
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"FTBG"
//!      4     2  format version (u16, currently 1)
//!      6     2  flags (u16, currently 0; nonzero rejects)
//!      8     4  vertex count n (u32)
//!     12     4  edge-record count m (u32)
//!     16   8·m  m edge records: (u32 u, u32 v) vertex-id pairs
//! 16+8m      8  FNV-1a-64 checksum of every preceding byte (u64)
//! ```
//!
//! The reader is **streaming**: records are pulled from any
//! [`std::io::Read`] in fixed-size chunks and pushed straight into a
//! [`GraphAccumulator`] while an incremental [`Fnv1a`] digests the bytes —
//! no intermediate `Vec<(u, v)>` is ever materialised, and the peak extra
//! memory beyond the graph itself is one 8-byte record buffer.  Policy
//! violations (self-loops, duplicates, out-of-range endpoints) are
//! handled by the same [`IngestOptions`] as text parsing; under the
//! default `Drop` policies they are counted, under `Error` they surface
//! as [`CorpusError::Record`].  Because the reader is single-pass, a
//! policy error on a record can fire before the trailing checksum has
//! been verified.

use crate::error::CorpusError;
use ftbfs_graph::bytes::Fnv1a;
use ftbfs_graph::io::{GraphAccumulator, IngestOptions, IngestStats};
use ftbfs_graph::Graph;
use std::io::Read;

/// The four magic bytes every FTBG file starts with.
pub const FTBG_MAGIC: [u8; 4] = *b"FTBG";
/// The format version this build reads and writes.
pub const FTBG_VERSION: u16 = 1;
/// Size of the fixed header (magic + version + flags + n + m).
pub const FTBG_HEADER_LEN: usize = 16;

/// Serialises `graph` into an FTBG byte buffer (header, one record per
/// edge in edge-id order with endpoints `(min, max)`, trailing checksum).
pub fn write_binary(graph: &Graph) -> Vec<u8> {
    let m = graph.edge_count();
    let mut buf = Vec::with_capacity(FTBG_HEADER_LEN + 8 * m + 8);
    buf.extend_from_slice(&FTBG_MAGIC);
    buf.extend_from_slice(&FTBG_VERSION.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes());
    buf.extend_from_slice(&(graph.vertex_count() as u32).to_le_bytes());
    buf.extend_from_slice(&(m as u32).to_le_bytes());
    for e in graph.edges() {
        let ep = graph.endpoints(e);
        buf.extend_from_slice(&ep.u.0.to_le_bytes());
        buf.extend_from_slice(&ep.v.0.to_le_bytes());
    }
    let digest = Fnv1a::new().update(&buf).finish();
    buf.extend_from_slice(&digest.to_le_bytes());
    buf
}

/// A byte-counting, checksumming wrapper over a raw reader.
struct CheckedReader<R> {
    inner: R,
    consumed: usize,
    digest: Fnv1a,
}

impl<R: Read> CheckedReader<R> {
    fn new(inner: R) -> Self {
        CheckedReader {
            inner,
            consumed: 0,
            digest: Fnv1a::new(),
        }
    }

    /// Fills `buf` exactly, folding the bytes into the running digest.
    /// Running out of input maps to [`CorpusError::Truncated`] at the
    /// offset where the read started.
    fn fill(&mut self, buf: &mut [u8]) -> Result<(), CorpusError> {
        match self.inner.read_exact(buf) {
            Ok(()) => {
                self.digest = self.digest.update(buf);
                self.consumed += buf.len();
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Err(CorpusError::Truncated { at: self.consumed })
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Reads the trailer **without** digesting it (the checksum is not
    /// part of its own coverage).
    fn trailer_u64(&mut self) -> Result<u64, CorpusError> {
        let mut buf = [0u8; 8];
        match self.inner.read_exact(&mut buf) {
            Ok(()) => {
                self.consumed += 8;
                Ok(u64::from_le_bytes(buf))
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Err(CorpusError::Truncated { at: self.consumed })
            }
            Err(e) => Err(e.into()),
        }
    }
}

/// Streams an FTBG byte source into a graph under the given ingestion
/// options.
///
/// Works over any [`Read`] — a byte slice, a [`std::io::BufReader`] over
/// a file, a network stream.  See the module docs for the error
/// contract; on success returns the graph plus the same [`IngestStats`]
/// text parsing reports.
pub fn read_binary<R: Read>(
    reader: R,
    options: IngestOptions,
) -> Result<(Graph, IngestStats), CorpusError> {
    let remap = options.remap;
    let mut src = CheckedReader::new(reader);

    let mut header = [0u8; FTBG_HEADER_LEN];
    src.fill(&mut header)?;
    if header[0..4] != FTBG_MAGIC {
        return Err(CorpusError::BadMagic);
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != FTBG_VERSION {
        return Err(CorpusError::UnsupportedVersion(version));
    }
    let flags = u16::from_le_bytes([header[6], header[7]]);
    if flags != 0 {
        return Err(CorpusError::UnsupportedFlags(flags));
    }
    let n = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    let m = u32::from_le_bytes([header[12], header[13], header[14], header[15]]) as usize;

    let mut acc = GraphAccumulator::new(options);
    if !remap {
        // Binary files always declare their vertex count; ids at or
        // beyond it are out of range (under remap the declaration is a
        // floor on the output size instead).
        acc.declare_vertices(n);
    }
    let mut record = [0u8; 8];
    for index in 0..m {
        src.fill(&mut record)?;
        let u = u32::from_le_bytes([record[0], record[1], record[2], record[3]]);
        let v = u32::from_le_bytes([record[4], record[5], record[6], record[7]]);
        acc.push_edge(u as u64, v as u64)
            .map_err(|rejection| CorpusError::Record { index, rejection })?;
    }

    let actual = src.digest.finish();
    let expected = src.trailer_u64()?;
    if expected != actual {
        return Err(CorpusError::ChecksumMismatch { expected, actual });
    }
    let mut probe = [0u8; 1];
    match src.inner.read(&mut probe) {
        Ok(0) => {}
        Ok(_) => return Err(CorpusError::TrailingBytes { count: 1 }),
        Err(e) => return Err(e.into()),
    }

    Ok(acc.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::generators;
    use ftbfs_graph::io::{EdgeRejection, LinePolicy};

    fn roundtrip(graph: &Graph) -> Graph {
        let bytes = write_binary(graph);
        let (g, stats) = read_binary(&bytes[..], IngestOptions::strict()).expect("roundtrip");
        assert_eq!(stats.edges_added, graph.edge_count());
        assert_eq!(stats.rejected(), 0);
        g
    }

    #[test]
    fn roundtrips_preserve_structure() {
        for g in [
            generators::grid(7, 9),
            generators::cycle(50),
            generators::gnp(40, 0.2, 7),
            generators::star(12),
        ] {
            let back = roundtrip(&g);
            assert_eq!(back.vertex_count(), g.vertex_count());
            assert_eq!(back.edge_count(), g.edge_count());
            for e in g.edges() {
                let ep = g.endpoints(e);
                assert!(back.has_edge(ep.u, ep.v));
            }
        }
    }

    #[test]
    fn empty_and_edgeless_graphs_roundtrip() {
        let empty = ftbfs_graph::GraphBuilder::new(0).build();
        assert_eq!(roundtrip(&empty).vertex_count(), 0);
        let isolated = ftbfs_graph::GraphBuilder::new(5).build();
        let back = roundtrip(&isolated);
        assert_eq!(back.vertex_count(), 5);
        assert_eq!(back.edge_count(), 0);
    }

    #[test]
    fn bad_magic_version_flags_are_rejected() {
        let g = generators::cycle(4);
        let good = write_binary(&g);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(
            read_binary(&bad[..], IngestOptions::strict()).unwrap_err(),
            CorpusError::BadMagic
        );

        let mut bad = good.clone();
        bad[4] = 9;
        assert_eq!(
            read_binary(&bad[..], IngestOptions::strict()).unwrap_err(),
            CorpusError::UnsupportedVersion(9)
        );

        let mut bad = good.clone();
        bad[6] = 1;
        assert_eq!(
            read_binary(&bad[..], IngestOptions::strict()).unwrap_err(),
            CorpusError::UnsupportedFlags(1)
        );
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let g = generators::grid(3, 3);
        let bytes = write_binary(&g);
        for len in 0..bytes.len() {
            let err = read_binary(&bytes[..len], IngestOptions::strict())
                .expect_err("truncated input must error");
            assert!(
                matches!(err, CorpusError::Truncated { .. }),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let g = generators::grid(4, 4);
        let bytes = write_binary(&g);
        // Flip a bit inside a record that stays in range and is neither a
        // self-loop nor a duplicate: the checksum is the last line of
        // defence.  Record 0 of the grid is (0, 1); turning it into (0, 9)
        // keeps it structurally valid.
        let mut bad = bytes.clone();
        let at = FTBG_HEADER_LEN + 4; // second endpoint of record 0
        bad[at] = 9;
        match read_binary(&bad[..], IngestOptions::strict()) {
            Err(CorpusError::ChecksumMismatch { expected, actual }) => {
                assert_ne!(expected, actual)
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let g = generators::cycle(5);
        let mut bytes = write_binary(&g);
        bytes.push(0);
        assert_eq!(
            read_binary(&bytes[..], IngestOptions::strict()).unwrap_err(),
            CorpusError::TrailingBytes { count: 1 }
        );
    }

    #[test]
    fn record_policies_apply_to_binary_records() {
        // Hand-build a file with a self-loop and a duplicate.
        let mut buf = Vec::new();
        buf.extend_from_slice(&FTBG_MAGIC);
        buf.extend_from_slice(&FTBG_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&4u32.to_le_bytes());
        for (u, v) in [(0u32, 1u32), (1, 1), (1, 0), (1, 2)] {
            buf.extend_from_slice(&u.to_le_bytes());
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let digest = Fnv1a::new().update(&buf).finish();
        buf.extend_from_slice(&digest.to_le_bytes());

        // Default policies: drop and count.
        let (g, stats) = read_binary(&buf[..], IngestOptions::default()).expect("lenient read");
        assert_eq!(g.edge_count(), 2);
        assert_eq!(stats.self_loops_dropped, 1);
        assert_eq!(stats.duplicates_dropped, 1);

        // Error policies: the first offending record errors with its index.
        let no_loops = IngestOptions {
            self_loops: LinePolicy::Error,
            ..IngestOptions::default()
        };
        assert_eq!(
            read_binary(&buf[..], no_loops).unwrap_err(),
            CorpusError::Record {
                index: 1,
                rejection: EdgeRejection::SelfLoop
            }
        );
        let no_dup = IngestOptions {
            duplicates: LinePolicy::Error,
            ..IngestOptions::default()
        };
        assert_eq!(
            read_binary(&buf[..], no_dup).unwrap_err(),
            CorpusError::Record {
                index: 2,
                rejection: EdgeRejection::Duplicate
            }
        );
    }

    #[test]
    fn out_of_range_records_are_typed_errors() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FTBG_MAGIC);
        buf.extend_from_slice(&FTBG_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&5u32.to_le_bytes()); // id 5 ≥ n = 2
        let digest = Fnv1a::new().update(&buf).finish();
        buf.extend_from_slice(&digest.to_le_bytes());
        assert_eq!(
            read_binary(&buf[..], IngestOptions::default()).unwrap_err(),
            CorpusError::Record {
                index: 0,
                rejection: EdgeRejection::OutOfRange
            }
        );
        // Remap mode compacts instead: ids 0 and 5 become 0 and 1.
        let (g, stats) = read_binary(&buf[..], IngestOptions::remapping()).expect("remap");
        assert_eq!(g.edge_count(), 1);
        assert!(g.vertex_count() >= 2);
        assert_eq!(stats.remapped_ids, 1);
    }
}
