//! File-level ingestion drivers: streaming text, streaming binary, and a
//! format-sniffing entry point.
//!
//! Text files flow through [`ftbfs_graph::io::EdgeListParser`] one line
//! at a time out of a **reused** line buffer — the driver never builds a
//! per-line token `Vec` or an intermediate edge list, so ingesting a
//! multi-megabyte `.gr` file allocates the graph and nothing else.
//! Binary files flow through [`crate::binary::read_binary`], which is
//! equally single-pass.  [`ingest_path`] sniffs the first four bytes and
//! dispatches, so callers can hand either format to one function.

use crate::binary::{read_binary, write_binary, FTBG_MAGIC};
use crate::error::CorpusError;
use ftbfs_graph::io::{to_edge_list, EdgeListParser, IngestOptions, IngestStats};
use ftbfs_graph::Graph;
use std::fs::File;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Streams a text edge list (legacy `n <count>` or DIMACS `p <n> <m>`
/// dialect) from any buffered reader into a graph.
///
/// Lines are pulled through one reused `String`; see the module docs for
/// the allocation contract.
pub fn ingest_text<R: BufRead>(
    mut reader: R,
    options: IngestOptions,
) -> Result<(Graph, IngestStats), CorpusError> {
    let mut parser = EdgeListParser::new(options);
    let mut line = String::new();
    loop {
        line.clear();
        let read = reader.read_line(&mut line)?;
        if read == 0 {
            break;
        }
        parser.feed_line(&line)?;
    }
    Ok(parser.finish()?)
}

/// Ingests a graph file, sniffing the format: files starting with the
/// `FTBG` magic are decoded as binary, everything else parses as text.
pub fn ingest_path(
    path: &Path,
    options: IngestOptions,
) -> Result<(Graph, IngestStats), CorpusError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let head = reader.fill_buf()?;
    if head.len() >= FTBG_MAGIC.len() && head[..FTBG_MAGIC.len()] == FTBG_MAGIC {
        read_binary(reader, options)
    } else {
        ingest_text(reader, options)
    }
}

/// Writes `graph` to `path` in the legacy text edge-list format.
pub fn write_text_path(graph: &Graph, path: &Path) -> Result<(), CorpusError> {
    let mut file = File::create(path)?;
    file.write_all(to_edge_list(graph).as_bytes())?;
    Ok(())
}

/// Writes `graph` to `path` in the checksummed FTBG binary format.
pub fn write_binary_path(graph: &Graph, path: &Path) -> Result<(), CorpusError> {
    let mut file = File::create(path)?;
    file.write_all(&write_binary(graph))?;
    Ok(())
}

/// Reads a whole file into memory — a convenience for small corpus
/// artifacts (scenario suites, goldens); graphs should go through the
/// streaming [`ingest_path`] instead.
pub fn read_file(path: &Path) -> Result<Vec<u8>, CorpusError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::generators;
    use ftbfs_graph::io::ParseError;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ftbfs-corpus-ingest-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn text_streaming_matches_in_memory_parse() {
        let g = generators::grid(5, 6);
        let text = to_edge_list(&g);
        let (streamed, stats) =
            ingest_text(text.as_bytes(), IngestOptions::strict()).expect("stream");
        assert_eq!(streamed.vertex_count(), g.vertex_count());
        assert_eq!(streamed.edge_count(), g.edge_count());
        assert_eq!(stats.edges_added, g.edge_count());
    }

    #[test]
    fn text_errors_surface_through_the_driver() {
        let err = ingest_text("n 3\nx y\n".as_bytes(), IngestOptions::strict()).unwrap_err();
        assert_eq!(
            err,
            CorpusError::Parse(ParseError::MalformedLine { line: 2 })
        );
        let err = ingest_text("x y z\n".as_bytes(), IngestOptions::strict()).unwrap_err();
        assert_eq!(err, CorpusError::Parse(ParseError::MissingHeader));
    }

    #[test]
    fn weighted_inputs_are_rejected_typed_under_policy() {
        use ftbfs_graph::io::WeightPolicy;
        let weighted = "p sp 3 2\na 1 2 7\na 2 3 1\n";
        let reject = IngestOptions {
            weights: WeightPolicy::RejectNonUnit,
            ..IngestOptions::strict()
        };

        // The default policy keeps the edges (weights discarded)...
        let (g, _) = ingest_text(weighted.as_bytes(), IngestOptions::strict()).unwrap();
        assert_eq!(g.edge_count(), 2);

        // ...while RejectNonUnit surfaces the typed error through both
        // the stream driver and the sniffing path driver.
        let err = ingest_text(weighted.as_bytes(), reject).unwrap_err();
        assert_eq!(
            err,
            CorpusError::Parse(ParseError::NonUnitWeight {
                line: 2,
                weight: "7".to_string(),
            })
        );
        let path = tmp("weighted.gr");
        std::fs::write(&path, weighted).unwrap();
        let err = ingest_path(&path, reject).unwrap_err();
        assert!(matches!(
            err,
            CorpusError::Parse(ParseError::NonUnitWeight { line: 2, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn path_ingestion_sniffs_both_formats() {
        let g = generators::gnp(30, 0.15, 11);
        let text_path = tmp("sniff.gr");
        let bin_path = tmp("sniff.ftbg");
        write_text_path(&g, &text_path).unwrap();
        write_binary_path(&g, &bin_path).unwrap();

        let (from_text, _) = ingest_path(&text_path, IngestOptions::strict()).unwrap();
        let (from_bin, _) = ingest_path(&bin_path, IngestOptions::strict()).unwrap();
        assert_eq!(from_text.vertex_count(), g.vertex_count());
        assert_eq!(from_bin.vertex_count(), g.vertex_count());
        assert_eq!(from_text.edge_count(), from_bin.edge_count());

        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&bin_path).ok();
    }

    #[test]
    fn missing_files_are_io_errors() {
        let err = ingest_path(Path::new("/nonexistent/ftbfs.gr"), IngestOptions::strict())
            .expect_err("missing file");
        assert!(matches!(err, CorpusError::Io(_)));
    }
}
