//! # ftbfs-corpus
//!
//! Real-graph corpus for the Dual Failure Resilient BFS reproduction:
//! the subsystem that moves the experiments off `n ≤ 200` toy graphs.
//!
//! Two halves:
//!
//! 1. **Ingestion** — streaming readers for on-disk edge lists in two
//!    formats: the text dialects of [`ftbfs_graph::io`] (legacy
//!    `n <count>` and DIMACS-style `p <n> <m>`) and the checksummed
//!    `FTBG` binary format ([`binary`]).  Both stream straight into the
//!    graph's CSR storage through one shared
//!    [`ftbfs_graph::io::GraphAccumulator`] — one parse path, one
//!    [`error::CorpusError`] taxonomy, no intermediate edge `Vec`, no
//!    panics on malformed input.  [`gen`] provides large-scale embedded
//!    generators (road-like lattice, preferential attachment, layered
//!    expander) to produce corpus files worth ingesting.
//!
//! 2. **Scenario corpus** — named, serializable fault-scenario suites
//!    ([`scenario`]) driven by a quad-tree spatial partition ([`quad`])
//!    and a biconnected-components pass: correlated-spatial pairs,
//!    bridge-adversarial 2-cuts, hub-targeted failures, and
//!    deterministic replay sequences.
//!
//! CSR fingerprints ([`csr`]) pin golden fixtures and prove that text
//! and binary ingestion of the same graph agree; [`telemetry`] registers
//! the `ftbfs_corpus_*` metric family.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod csr;
pub mod error;
pub mod gen;
pub mod ingest;
pub mod quad;
pub mod scenario;
pub mod telemetry;

pub use binary::{read_binary, write_binary, FTBG_HEADER_LEN, FTBG_MAGIC, FTBG_VERSION};
pub use csr::{csr_fingerprint, csr_summary, CsrSummary};
pub use error::CorpusError;
pub use gen::{layered_expander, preferential_attachment, road_like, EmbeddedGraph};
pub use ingest::{ingest_path, ingest_text, write_binary_path, write_text_path};
pub use quad::QuadTree;
pub use scenario::{
    bridge_adversarial, correlated_spatial, hub_targeted, replay_sequence, ScenarioKind,
    ScenarioSuite, SuiteError,
};
pub use telemetry::{IngestMetrics, SuiteMetrics, FORMAT_BINARY, FORMAT_TEXT};
