//! Large-scale embedded graph generators.
//!
//! The repo's historical experiments run on `n ≤ 200` toy graphs; the
//! corpus generators produce graphs an order of magnitude larger, with
//! shapes that mimic the structure real fault models care about:
//!
//! * [`road_like`] — a planar lattice with a sparse set of long-range
//!   shortcuts routed through a few "interchange" vertices (so genuine
//!   high-degree hubs exist, as in road networks);
//! * [`preferential_attachment`] — a Barabási–Albert-style scale-free
//!   graph with heavy-tailed degrees;
//! * [`layered_expander`] — a layered DAG-shaped expander where every
//!   layer-to-layer cut is wide (the hard case for cut-targeting fault
//!   scenarios).
//!
//! Every generator returns an [`EmbeddedGraph`]: the graph plus 2-D
//! coordinates per vertex, which the quad-tree partition
//! ([`crate::quad`]) uses to derive *spatially correlated* fault pairs.
//! All generators are deterministic in their seed.

use ftbfs_graph::{Graph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A graph together with a planar embedding (one `[x, y]` per vertex).
#[derive(Clone, Debug)]
pub struct EmbeddedGraph {
    /// The graph.
    pub graph: Graph,
    /// Vertex coordinates, indexed by vertex id.
    pub coords: Vec<[f64; 2]>,
}

impl EmbeddedGraph {
    /// Vertex count (coordinates and graph always agree).
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }
}

/// A `rows × cols` lattice with `shortcuts` extra long-range edges
/// routed through ~`√(rows·cols)` interchange vertices.
///
/// The lattice part embeds at integer grid coordinates; shortcut
/// endpoints are chosen uniformly, with one endpoint always an
/// interchange, so a handful of vertices accumulate large degree —
/// the targets of the hub-failure scenarios.
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
pub fn road_like(rows: usize, cols: usize, shortcuts: usize, seed: u64) -> EmbeddedGraph {
    assert!(rows > 0 && cols > 0, "lattice must be non-empty");
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    let at = |r: usize, c: usize| VertexId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(at(r, c), at(r + 1, c));
            }
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let hubs = (n as f64).sqrt().ceil() as usize;
    let interchanges: Vec<VertexId> = (0..hubs.max(1))
        .map(|_| VertexId::new(rng.gen_range(0..n)))
        .collect();
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < shortcuts && attempts < shortcuts * 20 + 100 {
        attempts += 1;
        let hub = interchanges[rng.gen_range(0..interchanges.len())];
        let far = VertexId::new(rng.gen_range(0..n));
        if hub != far && b.add_edge(hub, far) {
            added += 1;
        }
    }
    let coords = (0..n)
        .map(|i| [(i / cols) as f64, (i % cols) as f64])
        .collect();
    EmbeddedGraph {
        graph: b.build(),
        coords,
    }
}

/// A Barabási–Albert-style preferential-attachment graph: vertices
/// arrive one at a time and attach `m_per` edges to endpoints sampled
/// from the degree-weighted endpoint list.
///
/// The embedding places vertices uniformly at random in the unit square
/// (scale-free graphs have no natural planar layout; the random
/// embedding still gives the quad tree spatially meaningful regions).
///
/// # Panics
///
/// Panics if `n < 2` or `m_per == 0`.
pub fn preferential_attachment(n: usize, m_per: usize, seed: u64) -> EmbeddedGraph {
    assert!(n >= 2 && m_per >= 1, "need n >= 2 and m_per >= 1");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Endpoint multiset: each accepted edge pushes both ends, so sampling
    // uniformly from it is degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_per);
    b.add_edge(VertexId(0), VertexId(1));
    endpoints.extend([0, 1]);
    for v in 2..n {
        let vid = VertexId::new(v);
        let wanted = m_per.min(v);
        let mut attached = 0usize;
        let mut attempts = 0usize;
        while attached < wanted && attempts < 20 * wanted + 20 {
            attempts += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if b.add_edge(vid, VertexId(t)) {
                endpoints.extend([v as u32, t]);
                attached += 1;
            }
        }
    }
    let coords = (0..n)
        .map(|_| [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
        .collect();
    EmbeddedGraph {
        graph: b.build(),
        coords,
    }
}

/// A connected layered expander: `layers` layers of `width` vertices;
/// every vertex of layer `ℓ+1` gets one guaranteed edge from a random
/// vertex of layer `ℓ` (connectivity) plus `degree − 1` further random
/// cross-layer edges.
///
/// Embeds with the layer index as `x` and the in-layer index as `y`.
///
/// # Panics
///
/// Panics if `layers < 2`, `width == 0` or `degree == 0`.
pub fn layered_expander(layers: usize, width: usize, degree: usize, seed: u64) -> EmbeddedGraph {
    assert!(
        layers >= 2 && width > 0 && degree > 0,
        "need layers >= 2, width > 0, degree > 0"
    );
    let n = layers * width;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let at = |layer: usize, i: usize| VertexId::new(layer * width + i);
    // A path through layer 0 keeps the first layer internally connected.
    for i in 0..width.saturating_sub(1) {
        b.add_edge(at(0, i), at(0, i + 1));
    }
    for layer in 1..layers {
        for i in 0..width {
            let v = at(layer, i);
            b.add_edge(at(layer - 1, rng.gen_range(0..width)), v);
            let mut extra = 0usize;
            let mut attempts = 0usize;
            while extra + 1 < degree && attempts < 20 * degree + 20 {
                attempts += 1;
                if b.add_edge(at(layer - 1, rng.gen_range(0..width)), v) {
                    extra += 1;
                }
            }
        }
    }
    let coords = (0..n)
        .map(|i| [(i / width) as f64, (i % width) as f64])
        .collect();
    EmbeddedGraph {
        graph: b.build(),
        coords,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::properties::{degree_stats, is_connected};

    #[test]
    fn road_like_is_connected_and_embedded() {
        let g = road_like(20, 25, 40, 7);
        assert_eq!(g.vertex_count(), 500);
        assert_eq!(g.coords.len(), 500);
        assert!(is_connected(&g.graph));
        // Lattice edges plus (most of) the requested shortcuts.
        let lattice = 20 * 24 + 19 * 25;
        assert!(g.graph.edge_count() > lattice);
        // Interchanges give the degree distribution a heavy head.
        assert!(degree_stats(&g.graph).max >= 6);
    }

    #[test]
    fn road_like_is_deterministic_in_its_seed() {
        let a = road_like(10, 10, 15, 3);
        let b = road_like(10, 10, 15, 3);
        let c = road_like(10, 10, 15, 4);
        assert_eq!(
            crate::csr::csr_fingerprint(&a.graph),
            crate::csr::csr_fingerprint(&b.graph)
        );
        assert_ne!(
            crate::csr::csr_fingerprint(&a.graph),
            crate::csr::csr_fingerprint(&c.graph)
        );
    }

    #[test]
    fn preferential_attachment_is_scale_free_ish() {
        let g = preferential_attachment(600, 2, 11);
        assert!(is_connected(&g.graph));
        let stats = degree_stats(&g.graph);
        // Heavy tail: some vertex far above the mean degree.
        assert!(stats.max as f64 > 4.0 * stats.mean);
        assert_eq!(g.coords.len(), 600);
        assert!(g
            .coords
            .iter()
            .all(|c| (0.0..1.0).contains(&c[0]) && (0.0..1.0).contains(&c[1])));
    }

    #[test]
    fn layered_expander_is_connected_with_wide_cuts() {
        let g = layered_expander(8, 40, 3, 5);
        assert_eq!(g.vertex_count(), 320);
        assert!(is_connected(&g.graph));
        // Every layer boundary carries at least `width` edges, so no
        // single or double failure can disconnect consecutive layers.
        assert!(ftbfs_graph::properties::bridges(&g.graph).len() < 320);
    }
}
