//! Corpus metric registration: the `ftbfs_corpus_*` family.
//!
//! Experiments scrape these through the shared
//! [`MetricsRegistry`]; the names live in
//! [`ftbfs_telemetry::names`] next to the serving metrics so the
//! telemetry contract stays in one place.

use ftbfs_graph::io::IngestStats;
use ftbfs_telemetry::names;
use ftbfs_telemetry::{Counter, Histogram, MetricsRegistry};

/// The format label value for text ingestion runs.
pub const FORMAT_TEXT: &str = "text";
/// The format label value for binary (FTBG) ingestion runs.
pub const FORMAT_BINARY: &str = "binary";

/// Per-format ingestion instruments, registered once per format label.
pub struct IngestMetrics {
    /// Edges accepted (`ftbfs_corpus_edges_ingested_total`).
    pub edges: Counter,
    /// Records rejected by policy (`ftbfs_corpus_lines_rejected_total`).
    pub rejected: Counter,
    /// Ids moved by compaction (`ftbfs_corpus_ids_remapped_total`).
    pub remapped: Counter,
    /// Run duration in nanoseconds (`ftbfs_corpus_ingest_ns`).
    pub ingest_ns: Histogram,
}

impl IngestMetrics {
    /// Registers (or re-resolves) the ingestion instruments for a format
    /// label (`"text"` or `"binary"`); registration is idempotent.
    pub fn register(registry: &MetricsRegistry, format: &'static str) -> Self {
        let label = || vec![(names::LABEL_FORMAT, format.to_string())];
        IngestMetrics {
            edges: registry.counter_with(
                names::CORPUS_EDGES_INGESTED,
                names::CORPUS_EDGES_INGESTED_HELP,
                label(),
            ),
            rejected: registry.counter_with(
                names::CORPUS_LINES_REJECTED,
                names::CORPUS_LINES_REJECTED_HELP,
                label(),
            ),
            remapped: registry.counter_with(
                names::CORPUS_IDS_REMAPPED,
                names::CORPUS_IDS_REMAPPED_HELP,
                label(),
            ),
            ingest_ns: registry.histogram_with(
                names::CORPUS_INGEST_NS,
                names::CORPUS_INGEST_NS_HELP,
                label(),
                1,
            ),
        }
    }

    /// Records one completed ingestion run.
    pub fn record_run(&self, stats: &IngestStats, elapsed_ns: u64) {
        self.edges.add(stats.edges_added as u64);
        self.rejected.add(stats.rejected() as u64);
        self.remapped.add(stats.remapped_ids as u64);
        self.ingest_ns.record(elapsed_ns);
    }
}

/// Per-suite scenario instruments.
pub struct SuiteMetrics {
    /// Faults recorded (`ftbfs_corpus_suite_faults_total`).
    pub faults: Counter,
    /// Requests executed (`ftbfs_corpus_suite_requests_total`).
    pub requests: Counter,
}

impl SuiteMetrics {
    /// Registers the counters for a named suite of the given kind.
    pub fn register(registry: &MetricsRegistry, suite: &str, kind: &str) -> Self {
        SuiteMetrics {
            faults: registry.counter_with(
                names::CORPUS_SUITE_FAULTS,
                names::CORPUS_SUITE_FAULTS_HELP,
                vec![
                    (names::LABEL_SUITE, suite.to_string()),
                    (names::LABEL_KIND, kind.to_string()),
                ],
            ),
            requests: registry.counter_with(
                names::CORPUS_SUITE_REQUESTS,
                names::CORPUS_SUITE_REQUESTS_HELP,
                vec![(names::LABEL_SUITE, suite.to_string())],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_scrapable() {
        let registry = MetricsRegistry::new();
        let a = IngestMetrics::register(&registry, FORMAT_TEXT);
        let b = IngestMetrics::register(&registry, FORMAT_TEXT);
        a.edges.add(10);
        b.edges.add(5);
        // Same (name, labels) resolve to the same underlying counter.
        assert_eq!(a.edges.get(), 15);

        let stats = IngestStats {
            edges_added: 7,
            self_loops_dropped: 1,
            duplicates_dropped: 2,
            remapped_ids: 3,
        };
        a.record_run(&stats, 1_000);
        assert_eq!(a.edges.get(), 22);
        assert_eq!(a.rejected.get(), 3);
        assert_eq!(a.remapped.get(), 3);

        let suite = SuiteMetrics::register(&registry, "replay", "replay");
        suite.faults.add(4);
        suite.requests.add(8);

        let scrape = registry.scrape();
        let text = scrape.to_prometheus();
        assert!(text.contains(names::CORPUS_EDGES_INGESTED));
        assert!(text.contains(names::CORPUS_SUITE_REQUESTS));
        assert!(text.contains("format=\"text\""));
        assert!(text.contains("suite=\"replay\""));
    }
}
