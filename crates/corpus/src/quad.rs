//! Quad-tree spatial partition over embedded graphs.
//!
//! Correlated failures — a flooded district, a cut cable duct — take out
//! edges that are *near each other*.  To model that, the corpus
//! partitions an [`crate::gen::EmbeddedGraph`]'s vertices with a quad
//! tree: the bounding box is subdivided into four quadrants recursively
//! until every leaf holds at most `max_leaf` vertices (or a depth cap is
//! hit for degenerate/duplicate embeddings).  The leaves are the
//! "regions"; the correlated-spatial scenario builder draws both faults
//! of each pair from edges internal to one region.

/// A quad-tree partition of embedded vertices into spatial leaf regions.
#[derive(Clone, Debug)]
pub struct QuadTree {
    leaves: Vec<Vec<u32>>,
    leaf_of: Vec<u32>,
}

/// Hard recursion cap: beyond this depth, remaining points are
/// co-located (or pathologically close) and become one leaf.
const MAX_DEPTH: usize = 32;

impl QuadTree {
    /// Partitions `coords` into leaves of at most `max_leaf` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `max_leaf` is zero or any coordinate is non-finite.
    pub fn build(coords: &[[f64; 2]], max_leaf: usize) -> Self {
        assert!(max_leaf > 0, "leaves must be allowed to hold vertices");
        assert!(
            coords.iter().all(|c| c[0].is_finite() && c[1].is_finite()),
            "coordinates must be finite"
        );
        let mut leaves: Vec<Vec<u32>> = Vec::new();
        let mut leaf_of = vec![0u32; coords.len()];
        if coords.is_empty() {
            return QuadTree { leaves, leaf_of };
        }
        let (mut lo, mut hi) = ([f64::MAX; 2], [f64::MIN; 2]);
        for c in coords {
            for d in 0..2 {
                lo[d] = lo[d].min(c[d]);
                hi[d] = hi[d].max(c[d]);
            }
        }
        let all: Vec<u32> = (0..coords.len() as u32).collect();
        // Explicit work stack of (members, box-lo, box-hi, depth).
        let mut work = vec![(all, lo, hi, 0usize)];
        while let Some((members, lo, hi, depth)) = work.pop() {
            if members.len() <= max_leaf || depth >= MAX_DEPTH {
                let leaf = leaves.len() as u32;
                for &v in &members {
                    leaf_of[v as usize] = leaf;
                }
                leaves.push(members);
                continue;
            }
            let mid = [(lo[0] + hi[0]) / 2.0, (lo[1] + hi[1]) / 2.0];
            let mut quads: [Vec<u32>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
            for &v in &members {
                let c = coords[v as usize];
                let q = (c[0] > mid[0]) as usize | (((c[1] > mid[1]) as usize) << 1);
                quads[q].push(v);
            }
            // A split that fails to separate anything (all points in one
            // quadrant, e.g. duplicates) still terminates via the depth
            // cap; boxes shrink geometrically so 32 levels always suffice
            // for distinct f64 coordinates.
            for (q, quad) in quads.into_iter().enumerate() {
                if quad.is_empty() {
                    continue;
                }
                let qlo = [
                    if q & 1 == 0 { lo[0] } else { mid[0] },
                    if q & 2 == 0 { lo[1] } else { mid[1] },
                ];
                let qhi = [
                    if q & 1 == 0 { mid[0] } else { hi[0] },
                    if q & 2 == 0 { mid[1] } else { hi[1] },
                ];
                work.push((quad, qlo, qhi, depth + 1));
            }
        }
        QuadTree { leaves, leaf_of }
    }

    /// Number of leaf regions.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// The leaf region `vertex` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `vertex` is out of range.
    pub fn leaf_of(&self, vertex: usize) -> usize {
        self.leaf_of[vertex] as usize
    }

    /// The vertices of leaf `leaf`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn leaf_members(&self, leaf: usize) -> &[u32] {
        &self.leaves[leaf]
    }

    /// Iterates all leaves (slices of vertex ids).
    pub fn leaves(&self) -> impl Iterator<Item = &[u32]> {
        self.leaves.iter().map(|l| l.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_every_vertex_exactly_once() {
        let g = crate::gen::road_like(12, 12, 10, 1);
        let qt = QuadTree::build(&g.coords, 16);
        let mut seen = vec![false; g.vertex_count()];
        for leaf in qt.leaves() {
            assert!(leaf.len() <= 16);
            for &v in leaf {
                assert!(!seen[v as usize], "vertex {v} in two leaves");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        for v in 0..g.vertex_count() {
            assert!(qt
                .leaf_members(qt.leaf_of(v))
                .iter()
                .any(|&m| m as usize == v));
        }
    }

    #[test]
    fn leaves_are_spatially_tight() {
        let g = crate::gen::road_like(16, 16, 0, 1);
        let qt = QuadTree::build(&g.coords, 8);
        // With 256 grid points and ≤8 per leaf, no leaf may span the
        // whole 15-unit extent.
        for leaf in qt.leaves() {
            let xs: Vec<f64> = leaf.iter().map(|&v| g.coords[v as usize][0]).collect();
            let span = xs.iter().cloned().fold(f64::MIN, f64::max)
                - xs.iter().cloned().fold(f64::MAX, f64::min);
            assert!(span < 15.0, "leaf spans the whole x extent");
        }
    }

    #[test]
    fn degenerate_inputs_terminate() {
        // All points identical: one leaf via the depth cap.
        let coords = vec![[1.0, 1.0]; 50];
        let qt = QuadTree::build(&coords, 4);
        assert_eq!(qt.leaf_count(), 1);
        assert_eq!(qt.leaf_members(0).len(), 50);
        // Empty input.
        let qt = QuadTree::build(&[], 4);
        assert_eq!(qt.leaf_count(), 0);
    }
}
