//! Divergence-point preference searches used by `Cons2FTBFS`.
//!
//! Step (1) and step (3) of the algorithm do not take an arbitrary shortest
//! replacement path: among all shortest paths in `G ∖ F` they prefer the one
//! whose divergence point from `π(s, v)` is as close to the source as
//! possible, and (when relevant) whose divergence point from the detour is as
//! close to the detour's start as possible.  Both preferences are expressed
//! through the restricted graphs of Eq. (3)/(4) and located here by binary
//! search, exploiting that removing *less* of the path/detour can only
//! shorten distances (distances are monotone non-increasing in the candidate
//! index).
//!
//! All searches run through a caller-provided
//! [`SearchEngine`](ftbfs_graph::SearchEngine): the binary-search predicates
//! compare *unweighted* distances, so they use the engine's hop-bucket fast
//! path over an epoch-stamped overlay restriction and allocate nothing; only
//! the final path extraction (and the rare fallback) runs a weighted Dijkstra
//! to obtain the `W`-canonical path.

use crate::detour::Detour;
use ftbfs_graph::restrict::{overlay_detour_suffix, overlay_pi_segment};
use ftbfs_graph::{FaultSet, Graph, Path, SearchEngine, TieBreak, VertexId};

/// The outcome of an earliest-divergence search.
#[derive(Clone, Debug)]
pub struct DivergenceChoice {
    /// The chosen divergence point (a vertex of `π(s, v)` or of the detour).
    pub divergence: VertexId,
    /// The selected replacement path realising the optimal distance while
    /// diverging at [`DivergenceChoice::divergence`].
    pub path: Path,
}

/// Hop distance of the shortest `s → target` path in
/// `G(u_k, segment_end) ∖ faults`, where `u_k` is `pi.vertices()[k]`.
///
/// The divergence-point preferences of the paper compare *unweighted*
/// distances (`dist(s, v, ·)`); the tie-breaking weights only select a single
/// path once the divergence point is fixed — so this runs the engine's
/// unweighted fast path, not a weighted Dijkstra.
fn restricted_hops(
    engine: &mut SearchEngine,
    graph: &Graph,
    pi: &Path,
    k: usize,
    segment_end_pos: usize,
    target: VertexId,
    faults: &FaultSet,
) -> Option<u32> {
    engine.overlay.begin(graph);
    overlay_pi_segment(&mut engine.overlay, pi, k, segment_end_pos, target);
    engine.overlay.remove_faults(faults);
    let view = engine.overlay.view(graph);
    engine.workspace.bfs_hops(&view, pi.source(), target)
}

/// Finds the replacement path for `faults` whose first divergence point from
/// `pi = π(s, v)` is as close to the source as possible (step (1) and the
/// first part of step (3) of `Cons2FTBFS`).
///
/// * `limit` — the deepest vertex of `π` allowed as a divergence point (the
///   upper endpoint `u_i` of the first failing edge);
/// * `segment_end` — the end of the π-segment whose interior is removed in
///   the Eq. (3) restriction (`u_i` for step (1), `v` for step (3));
/// * `target` — the vertex `v` the replacement path must reach;
/// * `known_optimum` — the hop distance `dist(s, target, G ∖ faults)` when
///   the caller has already computed it (e.g. via a `fault_distance` check);
///   passing it skips the base-view search entirely.
///
/// Returns `None` if `target` is unreachable in `G ∖ faults`.
#[allow(clippy::too_many_arguments)]
pub fn earliest_pi_divergence(
    engine: &mut SearchEngine,
    graph: &Graph,
    w: &TieBreak,
    pi: &Path,
    target: VertexId,
    limit: VertexId,
    segment_end: VertexId,
    faults: &FaultSet,
    known_optimum: Option<u32>,
) -> Option<DivergenceChoice> {
    let source = pi.source();
    let optimum = match known_optimum {
        Some(h) => h,
        None => {
            engine.overlay.begin(graph);
            engine.overlay.remove_faults(faults);
            let view = engine.overlay.view(graph);
            engine.workspace.bfs_hops(&view, source, target)?
        }
    };

    let limit_pos = pi.position(limit).expect("divergence limit must lie on pi");
    let segment_end_pos = pi
        .position(segment_end)
        .expect("segment end must lie on pi");

    // Binary search the smallest k in 0..=limit_pos whose restricted distance
    // equals the optimum.  The predicate is monotone: larger k removes fewer
    // vertices, so the restricted distance is non-increasing in k.
    let pred = |engine: &mut SearchEngine, k: usize| -> bool {
        restricted_hops(engine, graph, pi, k, segment_end_pos, target, faults) == Some(optimum)
    };
    let mut lo = 0usize;
    let mut hi = limit_pos;
    if !pred(engine, hi) {
        // No divergence point up to `limit` realises the optimum (the optimal
        // path re-joins π below the failing edge in a way the restriction
        // forbids).  Fall back to the canonical optimal path.
        engine.overlay.begin(graph);
        engine.overlay.remove_faults(faults);
        let view = engine.overlay.view(graph);
        let path = engine
            .workspace
            .dijkstra(&view, w, source, Some(target))
            .path_to(target)?;
        let divergence = path.first_divergence_from(pi).unwrap_or(source);
        return Some(DivergenceChoice { divergence, path });
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pred(engine, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let k = lo;
    engine.overlay.begin(graph);
    overlay_pi_segment(&mut engine.overlay, pi, k, segment_end_pos, target);
    engine.overlay.remove_faults(faults);
    let view = engine.overlay.view(graph);
    let path = engine
        .workspace
        .dijkstra(&view, w, source, Some(target))
        .path_to(target)?;
    Some(DivergenceChoice {
        divergence: pi.vertices()[k],
        path,
    })
}

/// Given that the replacement path must diverge from `π(s, v)` at
/// `pi_divergence = x_τ` (the start of the detour), selects the replacement
/// path whose divergence point from the detour `D_τ` is as close to the
/// detour's start as possible (the second part of step (3), Eq. (4)).
///
/// `fault_on_detour_upper` must be the upper endpoint `w_j` of the second
/// failing edge `t_τ = (w_j, w_{j+1})` on the detour: candidate divergence
/// points are `w_0, …, w_j`.  `known_optimum` is the hop distance
/// `dist(s, target, G ∖ faults)` when the caller already has it.
///
/// Returns `None` if `target` is unreachable in `G ∖ faults`.
#[allow(clippy::too_many_arguments)]
pub fn earliest_detour_divergence(
    engine: &mut SearchEngine,
    graph: &Graph,
    w: &TieBreak,
    pi: &Path,
    detour: &Detour,
    target: VertexId,
    fault_on_detour_upper: VertexId,
    faults: &FaultSet,
    known_optimum: Option<u32>,
) -> Option<DivergenceChoice> {
    let source = pi.source();
    let optimum = match known_optimum {
        Some(h) => h,
        None => {
            engine.overlay.begin(graph);
            engine.overlay.remove_faults(faults);
            let view = engine.overlay.view(graph);
            engine.workspace.bfs_hops(&view, source, target)?
        }
    };

    let upper_pos = detour
        .position(fault_on_detour_upper)
        .expect("second fault's upper endpoint must lie on the detour");
    let x_pos = pi.position(detour.x).expect("detour start must lie on pi");
    let target_pos = pi.position(target).expect("target is the end of pi");

    // Fill the overlay with the Eq. (4) restriction for candidate l.
    let fill = |engine: &mut SearchEngine, l: usize| {
        engine.overlay.begin(graph);
        overlay_pi_segment(&mut engine.overlay, pi, x_pos, target_pos, target);
        overlay_detour_suffix(&mut engine.overlay, &detour.path, l, target);
        engine.overlay.remove_faults(faults);
    };
    let pred = |engine: &mut SearchEngine, l: usize| -> bool {
        fill(engine, l);
        let view = engine.overlay.view(graph);
        engine.workspace.bfs_hops(&view, source, target) == Some(optimum)
    };

    let mut lo = 0usize;
    let mut hi = upper_pos;
    if !pred(engine, hi) {
        // No divergence point on the detour realises the optimum; fall back
        // to the π-restricted optimum (divergence at x, ignoring the detour
        // preference).  This mirrors the algorithm's behaviour of only
        // imposing the detour preference "under certain conditions".
        engine.overlay.begin(graph);
        overlay_pi_segment(&mut engine.overlay, pi, x_pos, target_pos, target);
        engine.overlay.remove_faults(faults);
        let view = engine.overlay.view(graph);
        let path = engine
            .workspace
            .dijkstra(&view, w, source, Some(target))
            .path_to(target)?;
        let divergence = path.first_divergence_from(&detour.path).unwrap_or(detour.x);
        return Some(DivergenceChoice { divergence, path });
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pred(engine, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let l = lo;
    fill(engine, l);
    let view = engine.overlay.view(graph);
    let path = engine
        .workspace
        .dijkstra(&view, w, source, Some(target))
        .path_to(target)?;
    Some(DivergenceChoice {
        divergence: detour.path.vertices()[l],
        path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detour::decompose;
    use ftbfs_graph::{GraphBuilder, SpTree};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Source 0, path 0-1-2-3-4 (=v), two alternative detours:
    /// a high one 0-5-6-7-4 and a low one 2-8-4.
    fn graph_with_two_detours() -> Graph {
        let mut b = GraphBuilder::new(9);
        b.add_path(&[v(0), v(1), v(2), v(3), v(4)]);
        b.add_path(&[v(0), v(5), v(6), v(7), v(4)]);
        b.add_path(&[v(2), v(8), v(4)]);
        b.build()
    }

    #[test]
    fn prefers_earliest_divergence_point() {
        // Two equal-length s-v routes exist (0-1-2-3-4 and 0-5-6-7-4); W picks
        // one of them as pi.  Fail pi's last edge: a full replacement along
        // the other route exists, so the earliest possible divergence point is
        // the source itself, and it must be preferred over any later one.
        let g = graph_with_two_detours();
        let w = TieBreak::new(&g, 3);
        let tree = SpTree::new(&g, &w, v(0));
        let pi = tree.pi(v(4)).unwrap();
        assert_eq!(pi.len(), 4);
        let (a, b) = pi.last_edge().unwrap();
        let failed = g.edge_between(a, b).unwrap();
        let mut engine = SearchEngine::new();
        let choice = earliest_pi_divergence(
            &mut engine,
            &g,
            &w,
            &pi,
            v(4),
            a,
            a,
            &FaultSet::single(failed),
            None,
        )
        .unwrap();
        assert_eq!(choice.divergence, v(0));
        assert_eq!(choice.path.len(), 4);
        let dec = decompose(&pi, &choice.path).unwrap();
        assert_eq!(dec.detour.x, v(0));
        assert_eq!(dec.detour.y, v(4));
    }

    #[test]
    fn falls_back_to_later_divergence_when_early_is_not_optimal() {
        // Make the high detour longer so the low detour (divergence at 2) is
        // the unique optimum.
        let mut b = GraphBuilder::new(10);
        b.add_path(&[v(0), v(1), v(2), v(3), v(4)]);
        b.add_path(&[v(0), v(5), v(6), v(7), v(9), v(4)]);
        b.add_path(&[v(2), v(8), v(4)]);
        let g = b.build();
        let w = TieBreak::new(&g, 3);
        let tree = SpTree::new(&g, &w, v(0));
        let pi = tree.pi(v(4)).unwrap();
        let e34 = g.edge_between(v(3), v(4)).unwrap();
        let mut engine = SearchEngine::new();
        let choice = earliest_pi_divergence(
            &mut engine,
            &g,
            &w,
            &pi,
            v(4),
            v(3),
            v(3),
            &FaultSet::single(e34),
            None,
        )
        .unwrap();
        assert_eq!(choice.divergence, v(2));
        assert!(choice.path.contains_vertex(v(8)));
        assert_eq!(choice.path.len(), 4);
    }

    #[test]
    fn known_optimum_matches_internally_computed_one() {
        let g = graph_with_two_detours();
        let w = TieBreak::new(&g, 3);
        let tree = SpTree::new(&g, &w, v(0));
        let pi = tree.pi(v(4)).unwrap();
        let (a, b) = pi.last_edge().unwrap();
        let failed = g.edge_between(a, b).unwrap();
        let faults = FaultSet::single(failed);
        let mut engine = SearchEngine::new();
        let fresh =
            earliest_pi_divergence(&mut engine, &g, &w, &pi, v(4), a, a, &faults, None).unwrap();
        let seeded =
            earliest_pi_divergence(&mut engine, &g, &w, &pi, v(4), a, a, &faults, Some(4)).unwrap();
        assert_eq!(fresh.divergence, seeded.divergence);
        assert_eq!(fresh.path, seeded.path);
    }

    #[test]
    fn unreachable_target_returns_none() {
        let g = ftbfs_graph::generators::path(4);
        let w = TieBreak::new(&g, 1);
        let tree = SpTree::new(&g, &w, v(0));
        let pi = tree.pi(v(3)).unwrap();
        let e23 = g.edge_between(v(2), v(3)).unwrap();
        let mut engine = SearchEngine::new();
        assert!(earliest_pi_divergence(
            &mut engine,
            &g,
            &w,
            &pi,
            v(3),
            v(2),
            v(2),
            &FaultSet::single(e23),
            None
        )
        .is_none());
    }

    #[test]
    fn detour_divergence_prefers_earliest_point() {
        // pi: 0-1-2 (v=2).  Failing edge e=(1,2).  Detour D: 0-3-4-5-2.
        // Second fault on the detour edge (4,5).  Two escapes from the
        // detour back to v=2: from 3 (3-6-7-2) and from 4 (4-8-2).
        // Both give optimal total length; the algorithm must pick the escape
        // from the earliest detour vertex among optimal ones.
        let mut b = GraphBuilder::new(9);
        b.add_path(&[v(0), v(1), v(2)]);
        b.add_path(&[v(0), v(3), v(4), v(5), v(2)]);
        b.add_path(&[v(3), v(6), v(7), v(2)]);
        b.add_path(&[v(4), v(8), v(2)]);
        let g = b.build();
        let w = TieBreak::new(&g, 5);
        let tree = SpTree::new(&g, &w, v(0));
        let pi = tree.pi(v(2)).unwrap();
        assert_eq!(pi.len(), 2);
        let detour = Detour {
            path: Path::new(vec![v(0), v(3), v(4), v(5), v(2)]),
            x: v(0),
            y: v(2),
        };
        let e12 = g.edge_between(v(1), v(2)).unwrap();
        let e45 = g.edge_between(v(4), v(5)).unwrap();
        let faults = FaultSet::pair(e12, e45);
        // Optimal length avoiding both faults: via 3-6-7-2 (len 4) or via
        // 3-4-8-2 (len 4).  Earliest detour divergence is vertex 3.
        let mut engine = SearchEngine::new();
        let choice = earliest_detour_divergence(
            &mut engine,
            &g,
            &w,
            &pi,
            &detour,
            v(2),
            v(4),
            &faults,
            None,
        )
        .unwrap();
        assert_eq!(choice.divergence, v(3));
        assert!(choice.path.contains_vertex(v(6)));
        assert_eq!(choice.path.len(), 4);
    }

    #[test]
    fn detour_divergence_falls_back_when_detour_cannot_reach_optimum() {
        // Here the optimal replacement ignores the detour entirely; the
        // search must still return an optimal path.
        let mut b = GraphBuilder::new(8);
        b.add_path(&[v(0), v(1), v(2)]);
        b.add_path(&[v(0), v(3), v(4), v(5), v(6), v(2)]); // long detour
        b.add_path(&[v(0), v(7), v(2)]); // short alternative
        let g = b.build();
        let w = TieBreak::new(&g, 2);
        let tree = SpTree::new(&g, &w, v(0));
        let pi = tree.pi(v(2)).unwrap();
        let detour = Detour {
            path: Path::new(vec![v(0), v(3), v(4), v(5), v(6), v(2)]),
            x: v(0),
            y: v(2),
        };
        let e12 = g.edge_between(v(1), v(2)).unwrap();
        let e45 = g.edge_between(v(4), v(5)).unwrap();
        let faults = FaultSet::pair(e12, e45);
        let mut engine = SearchEngine::new();
        let choice = earliest_detour_divergence(
            &mut engine,
            &g,
            &w,
            &pi,
            &detour,
            v(2),
            v(4),
            &faults,
            None,
        )
        .unwrap();
        assert_eq!(choice.path.len(), 2);
        assert!(choice.path.contains_vertex(v(7)));
    }
}
