//! Dual-failure replacement paths `P_{s,v,F}` for `|F| ≤ 2` and the
//! classification of fault pairs relative to `π(s, v)` and its detours.

use ftbfs_graph::{
    bfs_to_target, dijkstra, EdgeId, FaultSet, Graph, GraphView, Path, TieBreak, VertexId,
};

/// How a fault set relates to the canonical path `π(s, v)` and the detours of
/// its single-failure replacement paths.  The paper's step (2) handles
/// [`FaultPairKind::PiPi`] pairs and step (3) handles [`FaultPairKind::PiDetour`]
/// pairs; everything else is already covered by earlier selections.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPairKind {
    /// No failed edge lies on `π(s, v)`; the canonical path survives.
    Irrelevant,
    /// Exactly one failed edge lies on `π(s, v)` and the other (if any) lies
    /// neither on `π(s, v)` nor on the detour protecting the first.
    SingleRelevant,
    /// Both failed edges lie on `π(s, v)` — a `(π, π)` pair.
    PiPi,
    /// One failed edge lies on `π(s, v)` and the other on the detour of its
    /// single-failure replacement path — a `(π, D)` pair.
    PiDetour,
}

/// Classifies a fault set of size ≤ 2 with respect to `π(s, v)` and a lookup
/// of the detour edges protecting each π edge.
///
/// `detour_edges(e)` must return the edge set of the detour `D_e` of the
/// replacement path `P_{s,v,{e}}` chosen in step (1), or `None` when `v` is
/// unreachable in `G ∖ {e}`.
pub fn classify_fault_pair<F>(
    graph: &Graph,
    pi: &Path,
    faults: &FaultSet,
    mut detour_edges: F,
) -> FaultPairKind
where
    F: FnMut(EdgeId) -> Option<Vec<EdgeId>>,
{
    let on_pi: Vec<EdgeId> = faults
        .edges()
        .iter()
        .copied()
        .filter(|&e| {
            let ep = graph.endpoints(e);
            pi.contains_edge(ep.u, ep.v)
        })
        .collect();
    match (faults.len(), on_pi.len()) {
        (_, 0) => FaultPairKind::Irrelevant,
        (1, 1) => FaultPairKind::SingleRelevant,
        (2, 2) => FaultPairKind::PiPi,
        (2, 1) => {
            let first = on_pi[0];
            let other = faults
                .edges()
                .iter()
                .copied()
                .find(|&e| e != first)
                .expect("two-element fault set has a second edge");
            match detour_edges(first) {
                Some(detour) if detour.contains(&other) => FaultPairKind::PiDetour,
                _ => FaultPairKind::SingleRelevant,
            }
        }
        _ => FaultPairKind::Irrelevant,
    }
}

/// The canonical dual-failure replacement path `SP(s, v, G ∖ F, W)`.
///
/// Returns `None` if `v` is unreachable once `F` fails.
pub fn canonical_dual_replacement(
    graph: &Graph,
    w: &TieBreak,
    source: VertexId,
    target: VertexId,
    faults: &FaultSet,
) -> Option<Path> {
    let view = GraphView::new(graph).without_faults(faults);
    dijkstra(&view, w, source, Some(target)).path_to(target)
}

/// The hop distance `dist(s, v, G ∖ F)`, or `None` if disconnected.
///
/// A pure-distance query: runs an unweighted targeted BFS (the `W`-weights
/// cannot change hop distances, see `ftbfs_graph::tiebreak`), so no `W` is
/// needed.
pub fn replacement_distance(
    graph: &Graph,
    _w: &TieBreak,
    source: VertexId,
    target: VertexId,
    faults: &FaultSet,
) -> Option<u32> {
    let view = GraphView::new(graph).without_faults(faults);
    bfs_to_target(&view, source, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::{generators, GraphBuilder, SpTree};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn canonical_dual_replacement_avoids_both_faults() {
        let g = generators::grid(3, 3);
        let w = TieBreak::new(&g, 1);
        let e01 = g.edge_between(v(0), v(1)).unwrap();
        let e03 = g.edge_between(v(0), v(3)).unwrap();
        let f = FaultSet::pair(e01, e03);
        // Both edges incident to the corner fail: corner 0 is cut off from 8.
        assert!(canonical_dual_replacement(&g, &w, v(0), v(8), &f).is_none());
        // A less severe pair still admits a path.
        let e12 = g.edge_between(v(1), v(2)).unwrap();
        let f2 = FaultSet::pair(e01, e12);
        let p = canonical_dual_replacement(&g, &w, v(0), v(2), &f2).unwrap();
        assert!(!f2.intersects_path(&g, &p));
        assert_eq!(
            p.len() as u32,
            replacement_distance(&g, &w, v(0), v(2), &f2).unwrap()
        );
    }

    #[test]
    fn classification_of_pairs() {
        // pi(0, 4) = 0-1-2-3-4; detour for e12 is 1-5-6-3 (re-entering at 3).
        let mut b = GraphBuilder::new(7);
        b.add_path(&[v(0), v(1), v(2), v(3), v(4)]);
        b.add_path(&[v(1), v(5), v(6), v(3)]);
        let g = b.build();
        let w = TieBreak::new(&g, 3);
        let tree = SpTree::new(&g, &w, v(0));
        let pi = tree.pi(v(4)).unwrap();
        let e12 = g.edge_between(v(1), v(2)).unwrap();
        let e23 = g.edge_between(v(2), v(3)).unwrap();
        let e56 = g.edge_between(v(5), v(6)).unwrap();
        let detour_lookup = |e: EdgeId| -> Option<Vec<EdgeId>> {
            if e == e12 || e == e23 {
                Some(vec![
                    g.edge_between(v(1), v(5)).unwrap(),
                    e56,
                    g.edge_between(v(6), v(3)).unwrap(),
                ])
            } else {
                None
            }
        };
        assert_eq!(
            classify_fault_pair(&g, &pi, &FaultSet::pair(e12, e23), detour_lookup),
            FaultPairKind::PiPi
        );
        assert_eq!(
            classify_fault_pair(&g, &pi, &FaultSet::pair(e12, e56), detour_lookup),
            FaultPairKind::PiDetour
        );
        assert_eq!(
            classify_fault_pair(&g, &pi, &FaultSet::single(e12), detour_lookup),
            FaultPairKind::SingleRelevant
        );
        assert_eq!(
            classify_fault_pair(&g, &pi, &FaultSet::single(e56), detour_lookup),
            FaultPairKind::Irrelevant
        );
        // One on pi, one elsewhere but not on the protecting detour.
        let e15 = g.edge_between(v(1), v(5)).unwrap();
        let far_lookup = |_e: EdgeId| -> Option<Vec<EdgeId>> { Some(vec![]) };
        assert_eq!(
            classify_fault_pair(&g, &pi, &FaultSet::pair(e23, e15), far_lookup),
            FaultPairKind::SingleRelevant
        );
    }
}
