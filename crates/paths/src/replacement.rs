//! Single-failure replacement paths `P_{s,v,e}`.
//!
//! For a source `s`, a target `v` and a failing edge `e ∈ π(s, v)`, the
//! replacement path is a shortest `s–v` path in `G ∖ {e}`.  Two selections
//! are provided:
//!
//! * the *canonical* replacement path `SP(s, v, G ∖ {e}, W)` — unique under
//!   the tie-breaking weights, computed by a plain Dijkstra;
//! * the *earliest-divergence* replacement path of step (1) of `Cons2FTBFS`,
//!   which among all shortest paths prefers the one whose divergence point
//!   from `π(s, v)` is closest to `s`, and which therefore admits the
//!   three-segment decomposition of Claim 3.4.

use crate::detour::{decompose, Decomposition};
use crate::select::earliest_pi_divergence;
use ftbfs_graph::{
    dijkstra, EdgeId, FaultSet, Graph, GraphView, Path, Search, SearchEngine, SpTree, TieBreak,
    VertexId,
};

/// Computes the canonical replacement path `SP(s, v, G ∖ {e}, W)`.
///
/// Returns `None` if `v` becomes unreachable when `e` fails.
pub fn canonical_replacement(
    graph: &Graph,
    w: &TieBreak,
    source: VertexId,
    target: VertexId,
    failed: EdgeId,
) -> Option<Path> {
    let view = GraphView::new(graph).without_edge(failed);
    dijkstra(&view, w, source, Some(target)).path_to(target)
}

/// Computes, for each failed tree edge, the full shortest-path information in
/// `G ∖ {e}` and hands it to `visit(e, search)`.
///
/// This is the batch form used by the single-failure FT-BFS construction: one
/// Dijkstra per tree edge covers all targets at once.  Only edges of the
/// shortest-path tree are relevant — failures of non-tree edges leave every
/// `π(s, v)` intact.  All searches share one workspace/overlay pair, so the
/// loop allocates nothing after the first edge.
pub fn for_each_tree_edge_failure<F>(graph: &Graph, w: &TieBreak, tree: &SpTree, mut visit: F)
where
    F: FnMut(EdgeId, &Search<'_>),
{
    let mut engine = SearchEngine::new();
    for &e in tree.tree_edges() {
        engine.overlay.begin(graph);
        engine.overlay.remove_edge(e);
        let view = engine.overlay.view(graph);
        let search = engine.workspace.dijkstra(&view, w, tree.source(), None);
        visit(e, &search);
    }
}

/// Per-vertex single-failure replacement-path computer following the
/// selection rule of step (1) of `Cons2FTBFS`.
///
/// The computer is tied to a source shortest-path tree; replacement paths are
/// produced lazily per `(v, e)` query.
pub struct SingleFailureReplacer<'a> {
    graph: &'a Graph,
    w: &'a TieBreak,
    tree: &'a SpTree,
}

impl<'a> SingleFailureReplacer<'a> {
    /// Creates a replacer over `graph` with weights `w` and the source tree
    /// `tree`.
    pub fn new(graph: &'a Graph, w: &'a TieBreak, tree: &'a SpTree) -> Self {
        SingleFailureReplacer { graph, w, tree }
    }

    /// The canonical path `π(s, v)`, if `v` is reachable.
    pub fn pi(&self, v: VertexId) -> Option<Path> {
        self.tree.pi(v)
    }

    /// The replacement path `P_{s,v,{e}}` chosen with the earliest-divergence
    /// preference, together with its Claim-3.4 decomposition.  Searches run
    /// through the caller's `engine`.
    ///
    /// `e` must lie on `π(s, v)`.  Returns `None` if `v` is unreachable in
    /// `G ∖ {e}`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unreachable in `G` or `e` does not lie on `π(s, v)`.
    pub fn earliest_divergence_replacement(
        &self,
        engine: &mut SearchEngine,
        v: VertexId,
        e: EdgeId,
    ) -> Option<Decomposition> {
        let pi = self.tree.pi(v).expect("target must be reachable in G");
        let ep = self.graph.endpoints(e);
        assert!(
            pi.contains_edge(ep.u, ep.v),
            "failing edge {e:?} does not lie on pi(s, {v:?})"
        );
        // The upper endpoint u_i of e on pi (closer to s).
        let (pos_u, pos_v) = (
            pi.position(ep.u).expect("endpoint on pi"),
            pi.position(ep.v).expect("endpoint on pi"),
        );
        let upper = if pos_u < pos_v { ep.u } else { ep.v };
        let faults = FaultSet::single(e);
        let choice = earliest_pi_divergence(
            engine, self.graph, self.w, &pi, v, upper, upper, &faults, None,
        )?;
        // The selected path has a unique divergence point and therefore
        // decomposes into prefix ∘ detour ∘ suffix (Claim 3.4).  If the path
        // came from the canonical fallback it may not decompose; in that case
        // we still return a decomposition-like object by treating the entire
        // off-π excursion conservatively.
        decompose(&pi, &choice.path).or_else(|| {
            // Fallback: canonical replacement that re-enters π several times.
            // Decompose it as prefix up to the first divergence point, a
            // "detour" consisting of everything until the last return to π,
            // and the remaining π suffix.
            fallback_decomposition(&pi, &choice.path)
        })
    }

    /// The hop length of the replacement path `P_{s,v,{e}}` (independent of
    /// the selection rule), or `None` if `v` is unreachable in `G ∖ {e}`.
    /// Runs the engine's unweighted fast path.
    pub fn replacement_distance(
        &self,
        engine: &mut SearchEngine,
        v: VertexId,
        e: EdgeId,
    ) -> Option<u32> {
        engine.overlay.begin(self.graph);
        engine.overlay.remove_edge(e);
        let view = engine.overlay.view(self.graph);
        engine.workspace.bfs_hops(&view, self.tree.source(), v)
    }
}

/// Conservative decomposition used when a replacement path does not have the
/// clean three-segment form: the detour is taken to span from the first
/// divergence point to the last vertex at which the path re-joins `π`.
fn fallback_decomposition(pi: &Path, p: &Path) -> Option<Decomposition> {
    let pi_set: std::collections::HashSet<VertexId> = pi.vertices().iter().copied().collect();
    let verts = p.vertices();
    // First divergence: last common prefix vertex.
    let mut i = 0;
    while i < verts.len() && i < pi.vertices().len() && verts[i] == pi.vertices()[i] {
        i += 1;
    }
    if i == 0 || i == verts.len() {
        return None;
    }
    let x = verts[i - 1];
    // Last vertex of p that lies on pi.
    let j = (0..verts.len())
        .rev()
        .find(|&k| pi_set.contains(&verts[k]))?;
    let y = verts[j];
    let prefix = Path::new(pi.vertices()[..i].to_vec());
    let detour_path = if j >= i {
        Path::new(verts[i - 1..=j].to_vec())
    } else {
        Path::singleton(x)
    };
    let suffix_start = pi.position(y)?;
    let suffix = Path::new(pi.vertices()[suffix_start..].to_vec());
    if *suffix.vertices().last()? != p.target() {
        return None;
    }
    Some(Decomposition {
        prefix,
        detour: crate::detour::Detour {
            path: detour_path,
            x,
            y,
        },
        suffix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::generators;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn canonical_replacement_avoids_edge_and_is_optimal() {
        let g = generators::cycle(8);
        let w = TieBreak::new(&g, 1);
        let e01 = g.edge_between(v(0), v(1)).unwrap();
        let p = canonical_replacement(&g, &w, v(0), v(1), e01).unwrap();
        assert_eq!(p.len(), 7);
        assert!(!p.contains_edge(v(0), v(1)));
        // Unreachable case: a path graph loses its only route.
        let pg = generators::path(5);
        let wp = TieBreak::new(&pg, 1);
        let e23 = pg.edge_between(v(2), v(3)).unwrap();
        assert!(canonical_replacement(&pg, &wp, v(0), v(4), e23).is_none());
    }

    #[test]
    fn batch_tree_edge_failures_cover_all_tree_edges() {
        let g = generators::grid(3, 3);
        let w = TieBreak::new(&g, 5);
        let tree = SpTree::new(&g, &w, v(0));
        let mut seen = Vec::new();
        for_each_tree_edge_failure(&g, &w, &tree, |e, sp| {
            seen.push(e);
            // The failed edge is never used by any reported parent.
            for x in g.vertices() {
                if let Some((_, pe)) = sp.parent(x) {
                    assert_ne!(pe, e);
                }
            }
        });
        assert_eq!(seen.len(), tree.tree_edges().len());
    }

    #[test]
    fn earliest_divergence_replacement_decomposes() {
        // Path 0-1-2-3-4 with detours: 0-5-6-7-4 and 2-8-4.
        let mut b = ftbfs_graph::GraphBuilder::new(9);
        b.add_path(&[v(0), v(1), v(2), v(3), v(4)]);
        b.add_path(&[v(0), v(5), v(6), v(7), v(4)]);
        b.add_path(&[v(2), v(8), v(4)]);
        let g = b.build();
        let w = TieBreak::new(&g, 7);
        let tree = SpTree::new(&g, &w, v(0));
        let rep = SingleFailureReplacer::new(&g, &w, &tree);
        let mut engine = SearchEngine::new();
        // Fail the last edge of whichever length-4 route W selected as pi;
        // the parallel route provides a replacement diverging at the source.
        let pi = rep.pi(v(4)).unwrap();
        assert_eq!(pi.len(), 4);
        let (a, bb) = pi.last_edge().unwrap();
        let failed = g.edge_between(a, bb).unwrap();
        let dec = rep
            .earliest_divergence_replacement(&mut engine, v(4), failed)
            .unwrap();
        // The earliest divergence point is the source itself.
        assert_eq!(dec.detour.x, v(0));
        assert_eq!(dec.detour.y, v(4));
        assert_eq!(dec.reassemble().len(), 4);
        assert_eq!(rep.replacement_distance(&mut engine, v(4), failed), Some(4));
    }

    #[test]
    fn replacement_distance_none_when_disconnected() {
        let g = generators::path(4);
        let w = TieBreak::new(&g, 2);
        let tree = SpTree::new(&g, &w, v(0));
        let rep = SingleFailureReplacer::new(&g, &w, &tree);
        let mut engine = SearchEngine::new();
        let e12 = g.edge_between(v(1), v(2)).unwrap();
        assert_eq!(rep.replacement_distance(&mut engine, v(3), e12), None);
        assert!(rep
            .earliest_divergence_replacement(&mut engine, v(3), e12)
            .is_none());
    }

    #[test]
    #[should_panic]
    fn earliest_divergence_requires_edge_on_pi() {
        let g = generators::grid(3, 3);
        let w = TieBreak::new(&g, 5);
        let tree = SpTree::new(&g, &w, v(0));
        let rep = SingleFailureReplacer::new(&g, &w, &tree);
        let mut engine = SearchEngine::new();
        // Edge (7,8) is not on pi(0, 1).
        let e = g.edge_between(v(7), v(8)).unwrap();
        let _ = rep.earliest_divergence_replacement(&mut engine, v(1), e);
    }
}
