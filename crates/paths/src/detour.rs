//! Detour decomposition of single-failure replacement paths (Claim 3.4).
//!
//! For a failing edge `e_i ∈ π(s, v)`, the replacement path chosen by the
//! paper decomposes as `P_{s,v,{e_i}} = π(s, x_i) ∘ D_i ∘ π(y_i, v)` where the
//! *detour* `D_i` is edge-disjoint from `π(s, v)` and meets it exactly at its
//! two endpoints `x_i` (the divergence point) and `y_i` (the re-entry point).

use ftbfs_graph::{EdgeId, Graph, Path, VertexId};

/// A detour segment `D = P[x, y]` of a replacement path together with its
/// attachment points on `π(s, v)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Detour {
    /// The detour path from `x` to `y` (inclusive of both endpoints).
    pub path: Path,
    /// First vertex of the detour: the divergence point from `π(s, v)`.
    pub x: VertexId,
    /// Last vertex of the detour: the re-entry point into `π(s, v)`.
    pub y: VertexId,
}

impl Detour {
    /// The number of edges of the detour (`|D|`).
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// Returns `true` if the detour has no edges (degenerate; does not occur
    /// for real replacement paths but kept total for robustness).
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// Returns `true` if the (undirected) edge identified by `e` lies on the
    /// detour.
    pub fn contains_edge(&self, graph: &Graph, e: EdgeId) -> bool {
        let ep = graph.endpoints(e);
        self.path.contains_edge(ep.u, ep.v)
    }

    /// Returns `true` if vertex `v` lies on the detour (including endpoints).
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.path.contains_vertex(v)
    }

    /// The edge ids of the detour, resolved in `graph`.
    pub fn edge_ids(&self, graph: &Graph) -> Vec<EdgeId> {
        self.path.edge_ids(graph)
    }

    /// The position (0-based) of vertex `v` along the detour, measured from
    /// `x`, if `v` lies on the detour.  This realises the paper's
    /// `dist(x_i, v, D_i)`.
    pub fn position(&self, v: VertexId) -> Option<usize> {
        self.path.position(v)
    }
}

/// The three-segment decomposition of a replacement path,
/// `P = π(s, x) ∘ D ∘ π(y, v)` (Claim 3.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decomposition {
    /// The prefix `π(s, x)` of the canonical shortest path.
    pub prefix: Path,
    /// The detour segment `D` (from `x` to `y`).
    pub detour: Detour,
    /// The suffix `π(y, v)` of the canonical shortest path.
    pub suffix: Path,
}

impl Decomposition {
    /// Reassembles the full replacement path from the three segments.
    pub fn reassemble(&self) -> Path {
        self.prefix.concat(&self.detour.path).concat(&self.suffix)
    }
}

/// Decomposes a replacement path `p` with respect to the canonical path `pi`
/// (`π(s, v)`), both starting at the same source and ending at the same
/// target.
///
/// Returns `None` when `p` does not have the three-segment form — i.e. when
/// it is not of the shape "prefix of `π`, one excursion off `π`, suffix of
/// `π`".  Replacement paths selected as in step (1) of `Cons2FTBFS`
/// always decompose (Claim 3.4); arbitrary shortest paths in `G ∖ {e}` may
/// not.
///
/// A path equal to `pi` itself decomposes with an empty detour anchored at
/// the target.
pub fn decompose(pi: &Path, p: &Path) -> Option<Decomposition> {
    if pi.source() != p.source() || pi.target() != p.target() {
        return None;
    }
    let pi_vertices = pi.vertices();
    let p_vertices = p.vertices();

    // Longest common prefix with pi.
    let mut i = 0;
    while i < pi_vertices.len() && i < p_vertices.len() && pi_vertices[i] == p_vertices[i] {
        i += 1;
    }
    // p == pi (or p is a prefix of pi, impossible for equal endpoints).
    if i == p_vertices.len() {
        let target = p.target();
        return Some(Decomposition {
            prefix: p.clone(),
            detour: Detour {
                path: Path::singleton(target),
                x: target,
                y: target,
            },
            suffix: Path::singleton(target),
        });
    }
    if i == 0 {
        return None; // different sources already excluded, defensive
    }
    let x = pi_vertices[i - 1];

    // Longest common suffix with pi.
    let mut j = 0;
    while j < pi_vertices.len()
        && j < p_vertices.len()
        && pi_vertices[pi_vertices.len() - 1 - j] == p_vertices[p_vertices.len() - 1 - j]
    {
        j += 1;
    }
    let y = p_vertices[p_vertices.len() - j];

    // The detour is p between x and y; it must not touch pi in its interior.
    let x_pos = i - 1;
    let y_pos = p_vertices.len() - j;
    if y_pos < x_pos {
        return None;
    }
    let detour_vertices = &p_vertices[x_pos..=y_pos];
    let pi_set: std::collections::HashSet<VertexId> = pi_vertices.iter().copied().collect();
    for &u in &detour_vertices[1..detour_vertices.len().saturating_sub(1)] {
        if pi_set.contains(&u) {
            return None;
        }
    }
    let prefix = Path::new(pi_vertices[..=x_pos].to_vec());
    let detour_path = if detour_vertices.len() == 1 {
        Path::singleton(detour_vertices[0])
    } else {
        Path::new(detour_vertices.to_vec())
    };
    let suffix_start = pi.position(y)?;
    let suffix = Path::new(pi_vertices[suffix_start..].to_vec());
    // The suffix of p must equal the suffix of pi for the decomposition to be valid.
    if p_vertices[y_pos..] != pi_vertices[suffix_start..] {
        return None;
    }
    Some(Decomposition {
        prefix,
        detour: Detour {
            path: detour_path,
            x,
            y,
        },
        suffix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn path(ids: &[u32]) -> Path {
        Path::new(ids.iter().map(|&i| v(i)).collect())
    }

    #[test]
    fn simple_decomposition() {
        let pi = path(&[0, 1, 2, 3, 4]);
        let p = path(&[0, 1, 5, 6, 3, 4]);
        let d = decompose(&pi, &p).unwrap();
        assert_eq!(d.prefix, path(&[0, 1]));
        assert_eq!(d.detour.x, v(1));
        assert_eq!(d.detour.y, v(3));
        assert_eq!(d.detour.path, path(&[1, 5, 6, 3]));
        assert_eq!(d.suffix, path(&[3, 4]));
        assert_eq!(d.reassemble(), p);
        assert_eq!(d.detour.len(), 3);
        assert_eq!(d.detour.position(v(6)), Some(2));
        assert_eq!(d.detour.position(v(9)), None);
    }

    #[test]
    fn detour_ending_at_target() {
        let pi = path(&[0, 1, 2, 3]);
        let p = path(&[0, 5, 6, 3]);
        let d = decompose(&pi, &p).unwrap();
        assert_eq!(d.detour.x, v(0));
        assert_eq!(d.detour.y, v(3));
        assert_eq!(d.suffix, Path::singleton(v(3)));
        assert_eq!(d.reassemble(), p);
    }

    #[test]
    fn identical_path_gives_empty_detour() {
        let pi = path(&[0, 1, 2]);
        let d = decompose(&pi, &pi).unwrap();
        assert!(d.detour.is_empty());
        assert_eq!(d.reassemble(), pi);
    }

    #[test]
    fn two_excursions_do_not_decompose() {
        let pi = path(&[0, 1, 2, 3, 4, 5]);
        // leaves pi at 0, returns at 2, leaves again at 3, returns at 5
        let p = path(&[0, 6, 2, 3, 7, 5]);
        assert!(decompose(&pi, &p).is_none());
    }

    #[test]
    fn mismatched_endpoints_do_not_decompose() {
        let pi = path(&[0, 1, 2]);
        let p = path(&[0, 1, 3]);
        assert!(decompose(&pi, &p).is_none());
        let q = path(&[9, 1, 2]);
        assert!(decompose(&pi, &q).is_none());
    }

    #[test]
    fn detour_edge_and_vertex_membership() {
        let mut b = GraphBuilder::new(7);
        b.add_path(&[v(0), v(1), v(2), v(3), v(4)]);
        b.add_path(&[v(1), v(5), v(6), v(3)]);
        let g = b.build();
        let pi = path(&[0, 1, 2, 3, 4]);
        let p = path(&[0, 1, 5, 6, 3, 4]);
        let d = decompose(&pi, &p).unwrap();
        let e56 = g.edge_between(v(5), v(6)).unwrap();
        let e12 = g.edge_between(v(1), v(2)).unwrap();
        assert!(d.detour.contains_edge(&g, e56));
        assert!(!d.detour.contains_edge(&g, e12));
        assert!(d.detour.contains_vertex(v(5)));
        assert!(!d.detour.contains_vertex(v(2)));
        assert_eq!(d.detour.edge_ids(&g).len(), 3);
    }
}
