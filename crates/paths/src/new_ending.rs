//! New-ending path predicates.
//!
//! A replacement path is *new-ending* (relative to an evolving structure)
//! when its last edge is not yet part of the structure at the moment the
//! path is considered; only such paths contribute a new edge incident to the
//! target vertex.  The definition is relative — the same path can be
//! new-ending early in the construction and not later — so the predicate
//! takes the current edge set explicitly.

use ftbfs_graph::{EdgeId, Graph, Path};
use std::collections::HashSet;

/// Returns `true` if the last edge of `path` is **not** contained in
/// `existing` (the current set of structure edges incident to the target),
/// i.e. the path is new-ending relative to that set.
///
/// Single-vertex paths have no last edge and are never new-ending.
pub fn is_new_ending(graph: &Graph, path: &Path, existing: &HashSet<EdgeId>) -> bool {
    match path.last_edge_id(graph) {
        Some(e) => !existing.contains(&e),
        None => false,
    }
}

/// Collects the last edges of an iterator of paths, deduplicated — the
/// `LastE(·)` union that the constructions add to the structure.
pub fn last_edges<'a, I>(graph: &Graph, paths: I) -> HashSet<EdgeId>
where
    I: IntoIterator<Item = &'a Path>,
{
    paths
        .into_iter()
        .filter_map(|p| p.last_edge_id(graph))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::{GraphBuilder, VertexId};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn new_ending_detection() {
        let mut b = GraphBuilder::new(4);
        b.add_path(&[v(0), v(1), v(3)]);
        b.add_path(&[v(0), v(2), v(3)]);
        let g = b.build();
        let via1 = Path::new(vec![v(0), v(1), v(3)]);
        let via2 = Path::new(vec![v(0), v(2), v(3)]);
        let e13 = g.edge_between(v(1), v(3)).unwrap();
        let mut existing = HashSet::new();
        existing.insert(e13);
        assert!(!is_new_ending(&g, &via1, &existing));
        assert!(is_new_ending(&g, &via2, &existing));
        assert!(!is_new_ending(&g, &Path::singleton(v(3)), &existing));
    }

    #[test]
    fn last_edge_collection() {
        let mut b = GraphBuilder::new(4);
        b.add_path(&[v(0), v(1), v(3)]);
        b.add_path(&[v(0), v(2), v(3)]);
        let g = b.build();
        let p1 = Path::new(vec![v(0), v(1), v(3)]);
        let p2 = Path::new(vec![v(0), v(2), v(3)]);
        let p3 = Path::new(vec![v(0), v(1), v(3)]); // duplicate last edge
        let set = last_edges(&g, [&p1, &p2, &p3]);
        assert_eq!(set.len(), 2);
        assert!(set.contains(&g.edge_between(v(1), v(3)).unwrap()));
        assert!(set.contains(&g.edge_between(v(2), v(3)).unwrap()));
    }
}
