//! # ftbfs-paths
//!
//! Replacement-path substrate for the reproduction of *Dual Failure
//! Resilient BFS Structure* (Merav Parter, PODC 2015).
//!
//! This crate sits between the raw graph substrate (`ftbfs-graph`) and the
//! FT-BFS constructions (`ftbfs-core`).  It provides:
//!
//! * [`detour`] — the three-segment decomposition
//!   `P_{s,v,{e}} = π(s,x) ∘ D ∘ π(y,v)` of Claim 3.4 and the [`detour::Detour`]
//!   type;
//! * [`replacement`] — single-failure replacement paths, both canonical
//!   (`SP(s,v,G∖{e},W)`) and with the earliest-divergence selection of step
//!   (1) of `Cons2FTBFS`, plus the batch per-tree-edge driver used by the
//!   single-failure FT-BFS construction;
//! * [`dual`] — canonical dual-failure replacement paths and the
//!   classification of fault pairs into `(π,π)` / `(π,D)` / irrelevant;
//! * [`select`] — the earliest π-divergence and earliest D-divergence
//!   searches over the restricted graphs of Eq. (3)/(4);
//! * [`new_ending`] — the new-ending predicate and `LastE(·)` collection.
//!
//! # Example
//!
//! ```
//! use ftbfs_graph::{generators, SearchEngine, SpTree, TieBreak, VertexId};
//! use ftbfs_paths::replacement::SingleFailureReplacer;
//!
//! let g = generators::cycle(8);
//! let w = TieBreak::new(&g, 0);
//! let tree = SpTree::new(&g, &w, VertexId(0));
//! let rep = SingleFailureReplacer::new(&g, &w, &tree);
//! let mut engine = SearchEngine::new();
//! let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
//! let dec = rep
//!     .earliest_divergence_replacement(&mut engine, VertexId(2), e)
//!     .unwrap();
//! // The replacement path for v=2 goes the long way around the cycle.
//! assert_eq!(dec.reassemble().len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detour;
pub mod dual;
pub mod new_ending;
pub mod replacement;
pub mod select;

pub use detour::{decompose, Decomposition, Detour};
pub use dual::{canonical_dual_replacement, classify_fault_pair, FaultPairKind};
pub use new_ending::{is_new_ending, last_edges};
pub use replacement::{canonical_replacement, for_each_tree_edge_failure, SingleFailureReplacer};
pub use select::{earliest_detour_divergence, earliest_pi_divergence, DivergenceChoice};
