//! Verification reports and counterexamples.

use ftbfs_graph::{FaultSet, VertexId};
use std::fmt;

/// A single violation of the FT-MBFS property: a (source, vertex, fault set)
/// triple for which the structure's surviving distance differs from the
/// graph's.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The source the distance is measured from.
    pub source: VertexId,
    /// The target vertex whose distance is wrong.
    pub vertex: VertexId,
    /// The fault set under which the mismatch occurs.
    pub faults: FaultSet,
    /// `dist(source, vertex, G ∖ F)` (`None` = unreachable).
    pub expected: Option<u32>,
    /// `dist(source, vertex, H ∖ F)` (`None` = unreachable).
    pub actual: Option<u32>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dist({}, {}) under {:?}: expected {:?}, structure gives {:?}",
            self.source, self.vertex, self.faults, self.expected, self.actual
        )
    }
}

/// The outcome of a verification run.
#[derive(Clone, Debug, Default)]
pub struct VerificationReport {
    /// Number of fault sets examined.
    pub checked_fault_sets: usize,
    /// Number of (source, fault set) BFS comparisons performed.
    pub checked_comparisons: usize,
    /// All violations found (empty for a valid structure).
    pub violations: Vec<Violation>,
}

impl VerificationReport {
    /// Returns `true` if no violation was found.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violation, if any — convenient for assertion messages.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.violations.first()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: VerificationReport) {
        self.checked_fault_sets += other.checked_fault_sets;
        self.checked_comparisons += other.checked_comparisons;
        self.violations.extend(other.violations);
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(
                f,
                "valid ({} fault sets, {} comparisons)",
                self.checked_fault_sets, self.checked_comparisons
            )
        } else {
            write!(
                f,
                "INVALID: {} violations out of {} fault sets; first: {}",
                self.violations.len(),
                self.checked_fault_sets,
                self.violations[0]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_validity_and_display() {
        let mut r = VerificationReport::default();
        assert!(r.is_valid());
        assert!(r.first_violation().is_none());
        r.checked_fault_sets = 10;
        r.checked_comparisons = 20;
        assert!(format!("{r}").contains("valid"));
        r.violations.push(Violation {
            source: VertexId(0),
            vertex: VertexId(3),
            faults: FaultSet::empty(),
            expected: Some(2),
            actual: Some(4),
        });
        assert!(!r.is_valid());
        assert!(format!("{r}").contains("INVALID"));
        assert!(format!("{}", r.violations[0]).contains("expected"));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = VerificationReport {
            checked_fault_sets: 2,
            checked_comparisons: 4,
            violations: vec![],
        };
        let b = VerificationReport {
            checked_fault_sets: 3,
            checked_comparisons: 6,
            violations: vec![Violation {
                source: VertexId(0),
                vertex: VertexId(1),
                faults: FaultSet::empty(),
                expected: None,
                actual: Some(1),
            }],
        };
        a.merge(b);
        assert_eq!(a.checked_fault_sets, 5);
        assert_eq!(a.checked_comparisons, 10);
        assert_eq!(a.violations.len(), 1);
        assert!(!a.is_valid());
    }
}
