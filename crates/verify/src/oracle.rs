//! A dual-failure distance / routing oracle over a constructed structure.
//!
//! This is the "quality of usage" side of the paper's motivation (objective
//! (2) in the introduction): once a sparse FT-BFS structure `H` has been
//! purchased, routing queries after failures should be answered *inside* `H`
//! and still be exact.  The oracle owns the structure's edge set and answers
//! `dist(s, v, H ∖ F)` / shortest-route queries by running a BFS restricted
//! to `H ∖ F` per query.

use ftbfs_graph::{bfs, EdgeId, FaultSet, Graph, GraphView, Path, VertexId};
use std::collections::HashSet;

/// A query oracle over a fault-tolerant BFS structure.
pub struct StructureOracle<'g> {
    graph: &'g Graph,
    source: VertexId,
    structure: HashSet<EdgeId>,
    removed: Vec<EdgeId>,
}

impl<'g> StructureOracle<'g> {
    /// Creates an oracle for the structure given by `structure_edges`,
    /// answering queries from `source`.
    pub fn new<I>(graph: &'g Graph, source: VertexId, structure_edges: I) -> Self
    where
        I: IntoIterator<Item = EdgeId>,
    {
        let structure: HashSet<EdgeId> = structure_edges.into_iter().collect();
        let removed = graph.edges().filter(|e| !structure.contains(e)).collect();
        StructureOracle {
            graph,
            source,
            structure,
            removed,
        }
    }

    /// The source all queries are answered from.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Number of edges in the underlying structure.
    pub fn structure_size(&self) -> usize {
        self.structure.len()
    }

    /// The distance `dist(source, v, H ∖ F)`, or `None` if `v` is
    /// unreachable inside the surviving structure.
    pub fn distance(&self, v: VertexId, faults: &FaultSet) -> Option<u32> {
        self.survivor_view(faults)
            .map(|view| bfs(&view, self.source).distance(v))
            .unwrap_or(None)
    }

    /// A shortest surviving route `source → v` inside `H ∖ F`.
    pub fn route(&self, v: VertexId, faults: &FaultSet) -> Option<Path> {
        let view = self.survivor_view(faults)?;
        bfs(&view, self.source).path_to(v)
    }

    /// Distances to all vertices in one BFS sweep of `H ∖ F`.
    pub fn all_distances(&self, faults: &FaultSet) -> Vec<Option<u32>> {
        match self.survivor_view(faults) {
            Some(view) => {
                let res = bfs(&view, self.source);
                self.graph.vertices().map(|v| res.distance(v)).collect()
            }
            None => vec![None; self.graph.vertex_count()],
        }
    }

    /// Checks one query against ground truth computed in the full graph:
    /// returns `true` if the structure's answer matches `dist(s, v, G ∖ F)`.
    pub fn matches_ground_truth(&self, v: VertexId, faults: &FaultSet) -> bool {
        let gview = GraphView::new(self.graph).without_faults(faults);
        let expected = bfs(&gview, self.source).distance(v);
        self.distance(v, faults) == expected
    }

    fn survivor_view(&self, faults: &FaultSet) -> Option<GraphView<'g>> {
        Some(
            GraphView::new(self.graph)
                .without_edges(self.removed.iter().copied())
                .without_faults(faults),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::generators;

    #[test]
    fn oracle_on_full_graph_matches_bfs() {
        let g = generators::grid(3, 4);
        let oracle = StructureOracle::new(&g, VertexId(0), g.edges());
        assert_eq!(oracle.source(), VertexId(0));
        assert_eq!(oracle.structure_size(), g.edge_count());
        let plain = bfs(&GraphView::new(&g), VertexId(0));
        for v in g.vertices() {
            assert_eq!(oracle.distance(v, &FaultSet::empty()), plain.distance(v));
            assert!(oracle.matches_ground_truth(v, &FaultSet::empty()));
        }
        let all = oracle.all_distances(&FaultSet::empty());
        assert_eq!(all.len(), g.vertex_count());
        assert_eq!(all[11], plain.distance(VertexId(11)));
    }

    #[test]
    fn routes_avoid_failed_edges_and_missing_structure_edges() {
        let g = generators::cycle(8);
        let oracle = StructureOracle::new(&g, VertexId(0), g.edges());
        let e01 = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        let f = FaultSet::single(e01);
        let route = oracle.route(VertexId(1), &f).unwrap();
        assert_eq!(route.len(), 7);
        assert!(!route.contains_edge(VertexId(0), VertexId(1)));
        // With two failures splitting the cycle, vertex 4 becomes unreachable.
        let e45 = g.edge_between(VertexId(4), VertexId(5)).unwrap();
        let e34 = g.edge_between(VertexId(3), VertexId(4)).unwrap();
        let f2 = FaultSet::pair(e45, e34);
        assert_eq!(oracle.distance(VertexId(4), &f2), None);
        assert!(oracle.route(VertexId(4), &f2).is_none());
    }

    #[test]
    fn sparse_structure_gives_larger_distances_when_insufficient() {
        let g = generators::cycle(6);
        // Keep only a BFS tree (drop edge 0): distance answers are correct
        // fault-free but wrong once the structure is asked about a failure it
        // cannot absorb.
        let edges: Vec<EdgeId> = g.edges().filter(|&e| e != EdgeId(0)).collect();
        let oracle = StructureOracle::new(&g, VertexId(0), edges);
        assert!(oracle.matches_ground_truth(VertexId(3), &FaultSet::empty()));
        // Failing edge (2,3) cuts vertex 2 off inside H (edge (0,1) is
        // missing from the structure), while G still reaches it via 0-1-2.
        let failed = g.edge_between(VertexId(2), VertexId(3)).unwrap();
        assert!(!oracle.matches_ground_truth(VertexId(2), &FaultSet::single(failed)));
    }
}
