//! A dual-failure distance / routing oracle over a constructed structure.
//!
//! This is the "quality of usage" side of the paper's motivation (objective
//! (2) in the introduction): once a sparse FT-BFS structure `H` has been
//! purchased, routing queries after failures should be answered *inside* `H`
//! and still be exact.
//!
//! Since the `ftbfs-oracle` crate landed, this type is a thin compatibility
//! wrapper: construction freezes the edge set into an
//! [`ftbfs_oracle::FrozenStructure`] (CSR adjacency + precomputed fault-free
//! tree) and every query is answered by an [`ftbfs_oracle::QueryEngine`]
//! (epoch-stamped zero-allocation BFS, `O(1)` fault-free fast path, fault-pair
//! LRU).  The old implementation rebuilt a `HashSet` edge view and ran a fresh
//! allocating BFS per query; that path is gone, so all verification now
//! exercises the same engine that production query serving uses.  The public
//! API is unchanged.

use ftbfs_graph::{bfs, EdgeId, FaultSet, Graph, GraphView, Path, VertexId};
use ftbfs_oracle::{FrozenStructure, QueryEngine};
use std::cell::RefCell;

/// A query oracle over a fault-tolerant BFS structure.
///
/// Queries take `&self` for backwards compatibility; the per-thread
/// [`QueryEngine`] scratch state lives behind a [`RefCell`], which makes the
/// oracle `!Sync`.  For multi-threaded serving, share a
/// [`FrozenStructure`] and give each thread its own engine (see
/// `ftbfs_oracle::ThroughputHarness`).
pub struct StructureOracle<'g> {
    graph: &'g Graph,
    frozen: FrozenStructure,
    engine: RefCell<QueryEngine>,
}

impl<'g> StructureOracle<'g> {
    /// Creates an oracle for the structure given by `structure_edges`
    /// (deduplicated), answering queries from `source`.
    ///
    /// Edge ids that do not exist in `graph` are silently ignored, matching
    /// the historical behaviour — this crate verifies output from arbitrary
    /// (possibly buggy, hand-built) constructions, so a stray id must
    /// produce a verification result, not a panic.  The strict entry point
    /// is [`FrozenStructure::from_edges`], which rejects foreign edges.
    ///
    /// Freezing runs the fault-free BFS once up front; afterwards
    /// fault-free queries are `O(1)` and faulted queries run inside the
    /// compact frozen adjacency.
    pub fn new<I>(graph: &'g Graph, source: VertexId, structure_edges: I) -> Self
    where
        I: IntoIterator<Item = EdgeId>,
    {
        let valid = structure_edges
            .into_iter()
            .filter(|&e| graph.contains_edge(e));
        let frozen = FrozenStructure::from_edges(graph, &[source], 2, valid);
        StructureOracle {
            graph,
            frozen,
            engine: RefCell::new(QueryEngine::new()),
        }
    }

    /// The source all queries are answered from.
    pub fn source(&self) -> VertexId {
        self.frozen.primary_source()
    }

    /// Number of edges in the underlying structure.
    pub fn structure_size(&self) -> usize {
        self.frozen.edge_count()
    }

    /// The frozen compilation of the structure, for callers that want to
    /// run their own engines (or snapshot it).
    pub fn frozen(&self) -> &FrozenStructure {
        &self.frozen
    }

    /// The distance `dist(source, v, H ∖ F)`, or `None` if `v` is
    /// unreachable inside the surviving structure.
    pub fn distance(&self, v: VertexId, faults: &FaultSet) -> Option<u32> {
        self.engine.borrow_mut().distance(&self.frozen, v, faults)
    }

    /// A shortest surviving route `source → v` inside `H ∖ F`.
    pub fn route(&self, v: VertexId, faults: &FaultSet) -> Option<Path> {
        self.engine
            .borrow_mut()
            .shortest_path(&self.frozen, v, faults)
    }

    /// Distances to all vertices under one fault set (one shared
    /// resolution, then `O(1)` per vertex).
    pub fn all_distances(&self, faults: &FaultSet) -> Vec<Option<u32>> {
        self.engine.borrow_mut().all_distances(&self.frozen, faults)
    }

    /// Checks one query against ground truth computed in the full graph:
    /// returns `true` if the structure's answer matches `dist(s, v, G ∖ F)`.
    pub fn matches_ground_truth(&self, v: VertexId, faults: &FaultSet) -> bool {
        let gview = GraphView::new(self.graph).without_faults(faults);
        let expected = bfs(&gview, self.source()).distance(v);
        self.distance(v, faults) == expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::generators;

    #[test]
    fn oracle_on_full_graph_matches_bfs() {
        let g = generators::grid(3, 4);
        let oracle = StructureOracle::new(&g, VertexId(0), g.edges());
        assert_eq!(oracle.source(), VertexId(0));
        assert_eq!(oracle.structure_size(), g.edge_count());
        let plain = bfs(&GraphView::new(&g), VertexId(0));
        for v in g.vertices() {
            assert_eq!(oracle.distance(v, &FaultSet::empty()), plain.distance(v));
            assert!(oracle.matches_ground_truth(v, &FaultSet::empty()));
        }
        let all = oracle.all_distances(&FaultSet::empty());
        assert_eq!(all.len(), g.vertex_count());
        assert_eq!(all[11], plain.distance(VertexId(11)));
    }

    #[test]
    fn routes_avoid_failed_edges_and_missing_structure_edges() {
        let g = generators::cycle(8);
        let oracle = StructureOracle::new(&g, VertexId(0), g.edges());
        let e01 = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        let f = FaultSet::single(e01);
        let route = oracle.route(VertexId(1), &f).unwrap();
        assert_eq!(route.len(), 7);
        assert!(!route.contains_edge(VertexId(0), VertexId(1)));
        // With two failures splitting the cycle, vertex 4 becomes unreachable.
        let e45 = g.edge_between(VertexId(4), VertexId(5)).unwrap();
        let e34 = g.edge_between(VertexId(3), VertexId(4)).unwrap();
        let f2 = FaultSet::pair(e45, e34);
        assert_eq!(oracle.distance(VertexId(4), &f2), None);
        assert!(oracle.route(VertexId(4), &f2).is_none());
    }

    #[test]
    fn sparse_structure_gives_larger_distances_when_insufficient() {
        let g = generators::cycle(6);
        // Keep only a BFS tree (drop edge 0): distance answers are correct
        // fault-free but wrong once the structure is asked about a failure it
        // cannot absorb.
        let edges: Vec<EdgeId> = g.edges().filter(|&e| e != EdgeId(0)).collect();
        let oracle = StructureOracle::new(&g, VertexId(0), edges);
        assert!(oracle.matches_ground_truth(VertexId(3), &FaultSet::empty()));
        // Failing edge (2,3) cuts vertex 2 off inside H (edge (0,1) is
        // missing from the structure), while G still reaches it via 0-1-2.
        let failed = g.edge_between(VertexId(2), VertexId(3)).unwrap();
        assert!(!oracle.matches_ground_truth(VertexId(2), &FaultSet::single(failed)));
    }

    #[test]
    fn foreign_edge_ids_are_ignored_like_before() {
        // Historical behaviour: edge ids outside the graph are dropped, so
        // verifying a buggy construction yields a result, not a panic.
        let g = generators::cycle(5);
        let edges = g.edges().chain([EdgeId(400), EdgeId(99)]);
        let oracle = StructureOracle::new(&g, VertexId(0), edges);
        assert_eq!(oracle.structure_size(), g.edge_count());
        assert!(oracle.matches_ground_truth(VertexId(2), &FaultSet::empty()));
    }

    #[test]
    fn exposed_frozen_structure_is_consistent() {
        let g = generators::grid(3, 3);
        let oracle = StructureOracle::new(&g, VertexId(4), g.edges());
        let frozen = oracle.frozen();
        assert_eq!(frozen.primary_source(), VertexId(4));
        assert_eq!(frozen.edge_count(), g.edge_count());
        // The snapshot of the frozen structure round-trips.
        let reloaded = FrozenStructure::load(&frozen.save()).unwrap();
        assert_eq!(&reloaded, frozen);
    }
}
