//! A post-failure distance / routing oracle over a constructed structure.
//!
//! This is the "quality of usage" side of the paper's motivation (objective
//! (2) in the introduction): once a sparse FT-BFS structure `H` has been
//! purchased, routing queries after failures should be answered *inside* `H`
//! and still be exact.
//!
//! Since the `ftbfs-oracle` crate landed, this type is a thin compatibility
//! wrapper over its serving stack, and since the serving API unified behind
//! the [`DistanceOracle`] trait, the wrapper is *generic over the backend*:
//! the default (and the historical behaviour) freezes an edge set into an
//! [`ftbfs_oracle::FrozenStructure`], but any oracle — notably the
//! multi-source [`ftbfs_oracle::FrozenMultiStructure`] — can be wrapped via
//! [`StructureOracle::with_oracle`] and verified through the *same* query
//! path that production serving uses.  The raw-[`FaultSet`] methods
//! (`distance`, `route`, `all_distances`) are kept for compatibility; the
//! checked forms ([`StructureOracle::try_distance`],
//! [`StructureOracle::try_route`]) surface the exactness guarantee for
//! fault sets beyond the structure's resilience.

use ftbfs_graph::{bfs, EdgeId, FaultSet, FaultSpec, Graph, GraphView, Path, VertexId};
use ftbfs_oracle::{Answer, DistanceOracle, FrozenStructure, QueryEngine, QueryError};
use std::cell::RefCell;

/// A query oracle over a fault-tolerant BFS structure, generic over the
/// serving backend (default: [`FrozenStructure`]).
///
/// Queries take `&self` for backwards compatibility; the per-thread
/// [`QueryEngine`] scratch state lives behind a [`RefCell`], which makes the
/// oracle `!Sync`.  For multi-threaded serving, share the frozen backend and
/// give each thread its own engine (see `ftbfs_serve::ThroughputHarness`).
pub struct StructureOracle<'g, O: DistanceOracle = FrozenStructure> {
    graph: &'g Graph,
    oracle: O,
    engine: RefCell<QueryEngine>,
}

impl<'g> StructureOracle<'g, FrozenStructure> {
    /// Creates an oracle for the structure given by `structure_edges`
    /// (deduplicated), answering queries from `source`.
    ///
    /// Edge ids that do not exist in `graph` are silently ignored, matching
    /// the historical behaviour — this crate verifies output from arbitrary
    /// (possibly buggy, hand-built) constructions, so a stray id must
    /// produce a verification result, not a panic.  The strict entry point
    /// is [`FrozenStructure::from_edges`], which rejects foreign edges.
    ///
    /// Freezing runs the fault-free BFS once up front; afterwards
    /// fault-free queries are `O(1)` and faulted queries run inside the
    /// compact frozen adjacency.
    pub fn new<I>(graph: &'g Graph, source: VertexId, structure_edges: I) -> Self
    where
        I: IntoIterator<Item = EdgeId>,
    {
        let valid = structure_edges
            .into_iter()
            .filter(|&e| graph.contains_edge(e));
        let frozen = FrozenStructure::from_edges(graph, &[source], 2, valid);
        StructureOracle::with_oracle(graph, frozen)
    }
}

impl<'g, O: DistanceOracle> StructureOracle<'g, O> {
    /// Wraps an already-frozen serving backend (single- or multi-source).
    pub fn with_oracle(graph: &'g Graph, oracle: O) -> Self {
        StructureOracle {
            graph,
            oracle,
            engine: RefCell::new(QueryEngine::new()),
        }
    }

    /// The source queries default to (the backend's primary source).
    pub fn source(&self) -> VertexId {
        self.oracle.primary_source()
    }

    /// Number of edges in the underlying structure (for multi-source
    /// backends, the union).
    pub fn structure_size(&self) -> usize {
        self.oracle.edge_count()
    }

    /// The frozen backend, for callers that want to run their own engines
    /// (or snapshot it).
    pub fn frozen(&self) -> &O {
        &self.oracle
    }

    /// The distance `dist(source, v, H ∖ F)`, or `None` if `v` is
    /// unreachable inside the surviving structure.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; use [`Self::try_distance`] for a
    /// checked answer carrying its guarantee.
    pub fn distance(&self, v: VertexId, faults: &FaultSet) -> Option<u32> {
        let spec = FaultSpec::from(faults);
        self.try_distance(v, &spec)
            .unwrap_or_else(|e| panic!("{e}"))
            .into_value()
    }

    /// The checked distance query: a typed error instead of a panic, and
    /// an [`Answer`] carrying the exactness [`ftbfs_oracle::Guarantee`]
    /// (best-effort once `|F|` exceeds the backend's resilience).
    pub fn try_distance(
        &self,
        v: VertexId,
        spec: &FaultSpec,
    ) -> Result<Answer<Option<u32>>, QueryError> {
        self.engine.borrow_mut().try_distance(&self.oracle, v, spec)
    }

    /// A shortest surviving route `source → v` inside `H ∖ F`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; use [`Self::try_route`] for a checked
    /// answer.
    pub fn route(&self, v: VertexId, faults: &FaultSet) -> Option<Path> {
        let spec = FaultSpec::from(faults);
        self.try_route(v, &spec)
            .unwrap_or_else(|e| panic!("{e}"))
            .into_value()
    }

    /// The checked routing query; see [`Self::try_distance`].
    pub fn try_route(
        &self,
        v: VertexId,
        spec: &FaultSpec,
    ) -> Result<Answer<Option<Path>>, QueryError> {
        self.engine
            .borrow_mut()
            .try_shortest_path(&self.oracle, v, spec)
    }

    /// Distances to all vertices under one fault set (one shared
    /// resolution, then `O(1)` per vertex).
    pub fn all_distances(&self, faults: &FaultSet) -> Vec<Option<u32>> {
        let spec = FaultSpec::from(faults);
        self.engine
            .borrow_mut()
            .try_all_distances(&self.oracle, &spec)
            .unwrap_or_else(|e| panic!("{e}"))
            .into_value()
    }

    /// Checks one query against ground truth computed in the full graph:
    /// returns `true` if the structure's answer matches `dist(s, v, G ∖ F)`.
    pub fn matches_ground_truth(&self, v: VertexId, faults: &FaultSet) -> bool {
        self.matches_ground_truth_from(self.source(), v, faults)
    }

    /// [`Self::matches_ground_truth`] from an arbitrary served source — the
    /// `S × V` form for multi-source backends.
    pub fn matches_ground_truth_from(&self, s: VertexId, v: VertexId, faults: &FaultSet) -> bool {
        let gview = GraphView::new(self.graph).without_faults(faults);
        let expected = bfs(&gview, s).distance(v);
        let spec = FaultSpec::from(faults);
        let actual = self
            .engine
            .borrow_mut()
            .try_distance_from(&self.oracle, s, v, &spec)
            .unwrap_or_else(|e| panic!("{e}"))
            .into_value();
        actual == expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::generators;
    use ftbfs_oracle::{FrozenMultiStructure, Guarantee};

    #[test]
    fn oracle_on_full_graph_matches_bfs() {
        let g = generators::grid(3, 4);
        let oracle = StructureOracle::new(&g, VertexId(0), g.edges());
        assert_eq!(oracle.source(), VertexId(0));
        assert_eq!(oracle.structure_size(), g.edge_count());
        let plain = bfs(&GraphView::new(&g), VertexId(0));
        for v in g.vertices() {
            assert_eq!(oracle.distance(v, &FaultSet::empty()), plain.distance(v));
            assert!(oracle.matches_ground_truth(v, &FaultSet::empty()));
        }
        let all = oracle.all_distances(&FaultSet::empty());
        assert_eq!(all.len(), g.vertex_count());
        assert_eq!(all[11], plain.distance(VertexId(11)));
    }

    #[test]
    fn routes_avoid_failed_edges_and_missing_structure_edges() {
        let g = generators::cycle(8);
        let oracle = StructureOracle::new(&g, VertexId(0), g.edges());
        let e01 = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        let f = FaultSet::single(e01);
        let route = oracle.route(VertexId(1), &f).unwrap();
        assert_eq!(route.len(), 7);
        assert!(!route.contains_edge(VertexId(0), VertexId(1)));
        // With two failures splitting the cycle, vertex 4 becomes unreachable.
        let e45 = g.edge_between(VertexId(4), VertexId(5)).unwrap();
        let e34 = g.edge_between(VertexId(3), VertexId(4)).unwrap();
        let f2 = FaultSet::pair(e45, e34);
        assert_eq!(oracle.distance(VertexId(4), &f2), None);
        assert!(oracle.route(VertexId(4), &f2).is_none());
    }

    #[test]
    fn sparse_structure_gives_larger_distances_when_insufficient() {
        let g = generators::cycle(6);
        // Keep only a BFS tree (drop edge 0): distance answers are correct
        // fault-free but wrong once the structure is asked about a failure it
        // cannot absorb.
        let edges: Vec<EdgeId> = g.edges().filter(|&e| e != EdgeId(0)).collect();
        let oracle = StructureOracle::new(&g, VertexId(0), edges);
        assert!(oracle.matches_ground_truth(VertexId(3), &FaultSet::empty()));
        // Failing edge (2,3) cuts vertex 2 off inside H (edge (0,1) is
        // missing from the structure), while G still reaches it via 0-1-2.
        let failed = g.edge_between(VertexId(2), VertexId(3)).unwrap();
        assert!(!oracle.matches_ground_truth(VertexId(2), &FaultSet::single(failed)));
    }

    #[test]
    fn foreign_edge_ids_are_ignored_like_before() {
        // Historical behaviour: edge ids outside the graph are dropped, so
        // verifying a buggy construction yields a result, not a panic.
        let g = generators::cycle(5);
        let edges = g.edges().chain([EdgeId(400), EdgeId(99)]);
        let oracle = StructureOracle::new(&g, VertexId(0), edges);
        assert_eq!(oracle.structure_size(), g.edge_count());
        assert!(oracle.matches_ground_truth(VertexId(2), &FaultSet::empty()));
    }

    #[test]
    fn exposed_frozen_structure_is_consistent() {
        let g = generators::grid(3, 3);
        let oracle = StructureOracle::new(&g, VertexId(4), g.edges());
        let frozen = oracle.frozen();
        assert_eq!(frozen.primary_source(), VertexId(4));
        assert_eq!(DistanceOracle::edge_count(frozen), g.edge_count());
        // The snapshot of the frozen structure round-trips.
        let reloaded = FrozenStructure::load(&frozen.save()).unwrap();
        assert_eq!(&reloaded, frozen);
    }

    #[test]
    fn checked_queries_carry_guarantees() {
        let g = generators::cycle(8);
        let oracle = StructureOracle::new(&g, VertexId(0), g.edges());
        let exact = oracle
            .try_distance(VertexId(3), &FaultSpec::One(EdgeId(0)))
            .unwrap();
        assert_eq!(exact.guarantee(), Guarantee::Exact);
        // Three faults exceed the declared resilience of 2.
        let spec = FaultSpec::from([EdgeId(1), EdgeId(3), EdgeId(5)]);
        let best = oracle.try_distance(VertexId(4), &spec).unwrap();
        assert_eq!(best.guarantee(), Guarantee::BestEffort);
        // Out-of-range vertices are typed errors through the checked path.
        assert!(matches!(
            oracle.try_distance(VertexId(99), &FaultSpec::None),
            Err(QueryError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn multi_source_backend_verifies_through_the_same_wrapper() {
        let g = generators::tree_plus_chords(12, 5, 7);
        let w = ftbfs_graph::TieBreak::new(&g, 7);
        let sources = [VertexId(0), VertexId(5)];
        let parts = ftbfs_core::multi_failure_ftmbfs_parts(&g, &w, &sources, 2);
        let multi = FrozenMultiStructure::freeze(&g, &parts);
        let oracle = StructureOracle::with_oracle(&g, multi);
        assert_eq!(oracle.source(), VertexId(0));
        let edges: Vec<EdgeId> = g.edges().collect();
        for &s in &sources {
            for v in g.vertices() {
                assert!(oracle.matches_ground_truth_from(s, v, &FaultSet::empty()));
                assert!(oracle.matches_ground_truth_from(
                    s,
                    v,
                    &FaultSet::pair(edges[1], edges[edges.len() / 2])
                ));
            }
        }
    }
}
