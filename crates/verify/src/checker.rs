//! Exhaustive and sampled verification of the `f`-FT-MBFS property.
//!
//! By definition (Section 2), a subgraph `H ⊆ G` is an `f`-FT-MBFS structure
//! for a source set `S` iff `dist(s, v, H ∖ F) = dist(s, v, G ∖ F)` for every
//! `(s, v) ∈ S × V` and every `F ⊆ E` with `|F| ≤ f`.  The exhaustive checker
//! enumerates every such `F` (feasible for small graphs: `O(m^f)` BFS pairs);
//! the sampled checker draws random fault sets and is used as a statistical
//! smoke test on larger instances.

use crate::report::{VerificationReport, Violation};
use ftbfs_graph::{bfs, EdgeId, FaultSet, Graph, GraphView, VertexId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Compares `G ∖ F` and `H ∖ F` distances from every source for one fault
/// set, appending violations to `report`.
fn check_fault_set(
    graph: &Graph,
    structure: &HashSet<EdgeId>,
    sources: &[VertexId],
    faults: &FaultSet,
    report: &mut VerificationReport,
) {
    report.checked_fault_sets += 1;
    let removed: Vec<EdgeId> = graph.edges().filter(|e| !structure.contains(e)).collect();
    for &s in sources {
        report.checked_comparisons += 1;
        let gview = GraphView::new(graph).without_faults(faults);
        let hview = GraphView::new(graph)
            .without_edges(removed.iter().copied())
            .without_faults(faults);
        let gd = bfs(&gview, s);
        let hd = bfs(&hview, s);
        for v in graph.vertices() {
            let expected = gd.distance(v);
            let actual = hd.distance(v);
            if expected != actual {
                report.violations.push(Violation {
                    source: s,
                    vertex: v,
                    faults: faults.clone(),
                    expected,
                    actual,
                });
            }
        }
    }
}

/// Enumerates every fault set of size at most `f` over the edges of `graph`.
fn all_fault_sets(graph: &Graph, f: usize) -> Vec<FaultSet> {
    let edges: Vec<EdgeId> = graph.edges().collect();
    let mut out = vec![FaultSet::empty()];
    let mut frontier: Vec<Vec<EdgeId>> = vec![vec![]];
    for _ in 0..f {
        let mut next = Vec::new();
        for combo in &frontier {
            let start = combo.last().map(|e| e.index() + 1).unwrap_or(0);
            for &e in &edges[start.min(edges.len())..] {
                let mut c = combo.clone();
                c.push(e);
                out.push(FaultSet::from_iter(c.iter().copied()));
                next.push(c);
            }
        }
        frontier = next;
    }
    out
}

/// Exhaustively verifies that the structure (given by its edge set) is an
/// `f`-FT-MBFS structure for `sources`.
///
/// Cost: `O(m^f)` fault sets, each with one BFS in `G` and one in `H` per
/// source.  Intended for small graphs and `f ≤ 2` (or `f = 3` on tiny
/// graphs).
pub fn verify_exhaustive<I>(
    graph: &Graph,
    structure_edges: I,
    sources: &[VertexId],
    f: usize,
) -> VerificationReport
where
    I: IntoIterator<Item = EdgeId>,
{
    let structure: HashSet<EdgeId> = structure_edges.into_iter().collect();
    let mut report = VerificationReport::default();
    for faults in all_fault_sets(graph, f) {
        check_fault_set(graph, &structure, sources, &faults, &mut report);
    }
    report
}

/// Verifies the structure against `samples` random fault sets of size exactly
/// `min(f, m)` (plus the empty set and all single-edge faults when `f ≥ 1`,
/// which are cheap and catch most regressions).
pub fn verify_sampled<I>(
    graph: &Graph,
    structure_edges: I,
    sources: &[VertexId],
    f: usize,
    samples: usize,
    seed: u64,
) -> VerificationReport
where
    I: IntoIterator<Item = EdgeId>,
{
    let structure: HashSet<EdgeId> = structure_edges.into_iter().collect();
    let mut report = VerificationReport::default();
    check_fault_set(graph, &structure, sources, &FaultSet::empty(), &mut report);
    if f >= 1 {
        for e in graph.edges() {
            check_fault_set(
                graph,
                &structure,
                sources,
                &FaultSet::single(e),
                &mut report,
            );
        }
    }
    if f >= 2 && graph.edge_count() >= 2 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let edges: Vec<EdgeId> = graph.edges().collect();
        let mut seen: HashSet<FaultSet> = HashSet::new();
        for _ in 0..samples {
            let mut pick = edges.clone();
            pick.shuffle(&mut rng);
            let fs = FaultSet::from_iter(pick.into_iter().take(f.min(edges.len())));
            if seen.insert(fs.clone()) {
                check_fault_set(graph, &structure, sources, &fs, &mut report);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::generators;

    #[test]
    fn whole_graph_always_verifies() {
        let g = generators::connected_gnp(12, 0.25, 1);
        let r = verify_exhaustive(&g, g.edges(), &[VertexId(0)], 2);
        assert!(r.is_valid(), "{r}");
        assert!(r.checked_fault_sets > 1);
    }

    #[test]
    fn bfs_tree_alone_fails_single_failure_on_a_cycle() {
        let g = generators::cycle(6);
        // Take a BFS tree from vertex 0 (drop the far edge (3,4) of the
        // cycle): correct fault-free but not 1-fault resilient.
        let dropped = g.edge_between(VertexId(3), VertexId(4)).unwrap();
        let edges: Vec<EdgeId> = g.edges().filter(|&e| e != dropped).collect();
        let r = verify_exhaustive(&g, edges, &[VertexId(0)], 1);
        assert!(!r.is_valid());
        let v = r.first_violation().unwrap();
        assert!(v.expected.is_some());
        // The violating fault must be an edge of the cycle other than the
        // dropped one (failing the dropped edge changes nothing for H).
        assert!(!v.faults.is_empty());
    }

    #[test]
    fn empty_fault_set_catches_missing_tree_edges() {
        let g = generators::path(5);
        // Structure missing the last path edge cannot even serve F = ∅.
        let edges: Vec<EdgeId> = g.edges().take(3).collect();
        let r = verify_exhaustive(&g, edges, &[VertexId(0)], 0);
        assert!(!r.is_valid());
        assert_eq!(r.checked_fault_sets, 1);
        assert_eq!(r.first_violation().unwrap().actual, None);
    }

    #[test]
    fn sampled_verification_agrees_with_exhaustive_on_small_graphs() {
        let g = generators::tree_plus_chords(10, 4, 3);
        let full = verify_exhaustive(&g, g.edges(), &[VertexId(0)], 2);
        let sampled = verify_sampled(&g, g.edges(), &[VertexId(0)], 2, 30, 7);
        assert!(full.is_valid());
        assert!(sampled.is_valid());
        assert!(sampled.checked_fault_sets <= full.checked_fault_sets);
    }

    #[test]
    fn multi_source_verification_checks_each_source() {
        let g = generators::cycle(5);
        let r = verify_exhaustive(&g, g.edges(), &[VertexId(0), VertexId(2)], 1);
        assert!(r.is_valid());
        assert_eq!(r.checked_comparisons, r.checked_fault_sets * 2);
    }
}
