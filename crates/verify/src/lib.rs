//! # ftbfs-verify
//!
//! Verification and query oracles for fault-tolerant BFS structures.
//!
//! * [`checker`] — exhaustive (`O(m^f)` fault sets) and sampled checks of the
//!   defining property `dist(s, v, H ∖ F) = dist(s, v, G ∖ F)`;
//! * [`report`] — verification reports with per-violation counterexamples;
//! * [`oracle`] — a distance/routing oracle that answers post-failure
//!   queries *inside* a structure, the usage model motivating the paper.
//!   Since the query-serving subsystem landed, [`StructureOracle`] is a
//!   thin wrapper over `ftbfs_oracle::{FrozenStructure, QueryEngine}`, so
//!   verification exercises the same path as production query serving.
//!
//! The crate deliberately accepts structures as plain edge-id collections so
//! it can verify output from any construction (including hand-built ones).
//!
//! # Example
//!
//! ```
//! use ftbfs_graph::{generators, VertexId};
//! use ftbfs_verify::verify_exhaustive;
//!
//! let g = generators::cycle(6);
//! // The whole graph trivially satisfies the FT-BFS property.
//! let report = verify_exhaustive(&g, g.edges(), &[VertexId(0)], 2);
//! assert!(report.is_valid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod oracle;
pub mod report;

pub use checker::{verify_exhaustive, verify_sampled};
pub use oracle::StructureOracle;
pub use report::{VerificationReport, Violation};
