//! The full lower-bound graphs `G*_f` (single source) and their multi-source
//! extension (Theorem 4.1, Figures 11 and 12).
//!
//! `G*_f` consists of (1) the gadget `G_f(d)`, (2) a hub vertex `v*` adjacent
//! to the gadget's last spine vertex and to a set `X` of extra vertices, and
//! (3) a complete bipartite graph between `X` and the gadget's leaves.  Every
//! bipartite edge is *necessary* in any `f`-failure FT-BFS structure rooted
//! at the gadget root: for each leaf a specific fault set of size at most `f`
//! forces the shortest route to `X` through that leaf.  Since there are
//! `|X| · d^f = Ω(n^{2-1/(f+1)})` bipartite edges, the lower bound follows.
//!
//! The multi-source variant stacks `σ` disjoint copies of the gadget sharing
//! the same `X` and `v*`, giving `Ω(σ^{1/(f+1)} · n^{2-1/(f+1)})` forced
//! edges for a source set of size `σ`.

use crate::gf::{build_gf, GfComponent};
use ftbfs_graph::{EdgeId, FaultSet, Graph, GraphBuilder, VertexId};

/// A constructed lower-bound graph with all the bookkeeping needed to verify
/// edge necessity and to report sizes.
#[derive(Clone, Debug)]
pub struct GStarGraph {
    /// The built graph.
    pub graph: Graph,
    /// The fault budget `f` the construction targets.
    pub f: usize,
    /// The gadget parameter `d`.
    pub d: usize,
    /// The sources (gadget roots), one per gadget copy; `sources[0]` is the
    /// single-source root.
    pub sources: Vec<VertexId>,
    /// The gadget copies' bookkeeping, parallel to [`GStarGraph::sources`].
    pub gadgets: Vec<GfComponent>,
    /// The hub vertex `v*`.
    pub v_star: VertexId,
    /// The extra vertex set `X`.
    pub x_vertices: Vec<VertexId>,
    /// All bipartite `X × leaves` edges (the edges the lower bound forces).
    pub bipartite_edges: Vec<EdgeId>,
}

impl GStarGraph {
    /// Builds the single-source `G*_f` with gadget parameter `d` and
    /// `x_count` extra vertices.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0`, `d == 0` or `x_count == 0`.
    pub fn single_source(f: usize, d: usize, x_count: usize) -> Self {
        Self::multi_source(f, d, 1, x_count)
    }

    /// Builds the multi-source variant with `sigma` gadget copies.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn multi_source(f: usize, d: usize, sigma: usize, x_count: usize) -> Self {
        assert!(
            f >= 1 && d >= 1 && sigma >= 1 && x_count >= 1,
            "parameters must be positive"
        );
        let mut builder = GraphBuilder::new(0);
        let mut gadgets = Vec::with_capacity(sigma);
        for _ in 0..sigma {
            gadgets.push(build_gf(&mut builder, f, d));
        }
        let v_star = builder.add_vertex();
        for gadget in &gadgets {
            builder.add_edge(gadget.spine_end, v_star);
        }
        let x_vertices = builder.add_vertices(x_count);
        for &x in &x_vertices {
            builder.add_edge(v_star, x);
        }
        let mut bipartite_pairs = Vec::new();
        for gadget in &gadgets {
            for leaf in &gadget.leaves {
                for &x in &x_vertices {
                    builder.add_edge(x, leaf.vertex);
                    bipartite_pairs.push((x, leaf.vertex));
                }
            }
        }
        let graph = builder.build();
        let bipartite_edges = bipartite_pairs
            .iter()
            .map(|&(a, b)| graph.edge_between(a, b).expect("bipartite edge was added"))
            .collect();
        let sources = gadgets.iter().map(|c| c.root).collect();
        GStarGraph {
            graph,
            f,
            d,
            sources,
            gadgets,
            v_star,
            x_vertices,
            bipartite_edges,
        }
    }

    /// Builds a single-source `G*_f` with roughly `target_n` vertices: the
    /// largest `d` whose gadget uses at most half the budget, with the
    /// remaining vertices spent on `X`.
    ///
    /// # Panics
    ///
    /// Panics if `target_n` is too small to host even `d = 1`.
    pub fn for_target_size(f: usize, target_n: usize) -> Self {
        let mut d = 1usize;
        loop {
            let probe = crate::gf::GfGraph::new(f, d + 1);
            if probe.graph.vertex_count() + 2 > target_n / 2 {
                break;
            }
            d += 1;
        }
        let gadget_n = crate::gf::GfGraph::new(f, d).graph.vertex_count();
        assert!(
            target_n > gadget_n + 1,
            "target size {target_n} too small for G*_{f} with d={d}"
        );
        let x_count = target_n - gadget_n - 1;
        Self::single_source(f, d, x_count)
    }

    /// Number of vertices of the built graph.
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of forced bipartite edges `|E(B)|`.
    pub fn forced_edge_count(&self) -> usize {
        self.bipartite_edges.len()
    }

    /// All leaves of all gadget copies as `(copy index, leaf index, vertex)`.
    pub fn leaves(&self) -> impl Iterator<Item = (usize, usize, VertexId)> + '_ {
        self.gadgets.iter().enumerate().flat_map(|(c, gadget)| {
            gadget
                .leaves
                .iter()
                .enumerate()
                .map(move |(i, leaf)| (c, i, leaf.vertex))
        })
    }

    /// The fault set witnessing that the bipartite edges into the given leaf
    /// are necessary: the leaf's label, plus the `(spine_end, v*)` edge when
    /// the label leaves the spine (and hence the shortcut through `v*`)
    /// intact.  The returned set always has at most `f` edges.
    pub fn necessity_witness(&self, copy: usize, leaf_index: usize) -> FaultSet {
        let gadget = &self.gadgets[copy];
        let leaf = &gadget.leaves[leaf_index];
        let spine: std::collections::HashSet<VertexId> = gadget.spine.iter().copied().collect();
        let mut edges: Vec<EdgeId> = leaf
            .label
            .iter()
            .map(|&(a, b)| {
                self.graph
                    .edge_between(a, b)
                    .expect("label edge exists in the built graph")
            })
            .collect();
        let label_cuts_spine = leaf
            .label
            .iter()
            .any(|&(a, b)| spine.contains(&a) && spine.contains(&b));
        if !label_cuts_spine {
            edges.push(
                self.graph
                    .edge_between(gadget.spine_end, self.v_star)
                    .expect("spine_end-v* edge exists"),
            );
        }
        debug_assert!(edges.len() <= self.f);
        FaultSet::from_iter(edges)
    }

    /// The lower-bound formula `σ^{1/(f+1)} · n^{2 - 1/(f+1)}` of
    /// Theorem 1.2, evaluated for this instance.
    pub fn theoretical_bound(&self) -> f64 {
        lower_bound_formula(self.f, self.sources.len(), self.vertex_count())
    }
}

/// The asymptotic lower-bound formula `σ^{1/(f+1)} · n^{2 - 1/(f+1)}`.
pub fn lower_bound_formula(f: usize, sigma: usize, n: usize) -> f64 {
    let exp = 1.0 / (f as f64 + 1.0);
    (sigma as f64).powf(exp) * (n as f64).powf(2.0 - exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::properties::is_connected;

    #[test]
    fn single_source_counts() {
        let gs = GStarGraph::single_source(2, 3, 5);
        assert!(is_connected(&gs.graph));
        assert_eq!(gs.sources.len(), 1);
        // 9 leaves, 5 X vertices -> 45 bipartite edges.
        assert_eq!(gs.forced_edge_count(), 45);
        assert_eq!(gs.leaves().count(), 9);
        assert_eq!(gs.x_vertices.len(), 5);
        assert!(gs.graph.has_edge(gs.gadgets[0].spine_end, gs.v_star));
    }

    #[test]
    fn multi_source_counts() {
        let gs = GStarGraph::multi_source(1, 3, 2, 4);
        assert_eq!(gs.sources.len(), 2);
        assert_eq!(gs.leaves().count(), 6);
        assert_eq!(gs.forced_edge_count(), 24);
        assert!(is_connected(&gs.graph));
        // Sources are distinct roots of distinct copies.
        assert_ne!(gs.sources[0], gs.sources[1]);
    }

    #[test]
    fn for_target_size_hits_the_budget() {
        let gs = GStarGraph::for_target_size(2, 300);
        assert_eq!(gs.vertex_count(), 300);
        assert!(gs.d >= 2);
        assert!(!gs.x_vertices.is_empty());
    }

    #[test]
    fn witnesses_have_at_most_f_edges() {
        for f in [1usize, 2] {
            let gs = GStarGraph::single_source(f, 3, 3);
            for (c, i, _) in gs.leaves().collect::<Vec<_>>() {
                let fsw = gs.necessity_witness(c, i);
                assert!(fsw.len() <= f, "witness too large for leaf {i} (f={f})");
                assert!(!fsw.is_empty());
            }
        }
    }

    #[test]
    fn rightmost_leaf_witness_is_the_vstar_edge() {
        let gs = GStarGraph::single_source(2, 3, 3);
        let last = gs.gadgets[0].leaves.len() - 1;
        let fsw = gs.necessity_witness(0, last);
        assert_eq!(fsw.len(), 1);
        let e = fsw.edges()[0];
        let ep = gs.graph.endpoints(e);
        assert!(ep.contains(gs.v_star));
        assert!(ep.contains(gs.gadgets[0].spine_end));
    }

    #[test]
    fn formula_specialises_to_the_paper_values() {
        // f = 2, sigma = 1: Omega(n^{5/3}).
        let b = lower_bound_formula(2, 1, 1000);
        assert!((b - 1000f64.powf(5.0 / 3.0)).abs() < 1e-6);
        // f = 1, sigma = 1: Omega(n^{3/2}).
        let b1 = lower_bound_formula(1, 1, 1000);
        assert!((b1 - 1000f64.powf(1.5)).abs() < 1e-6);
        let gs = GStarGraph::single_source(2, 2, 2);
        assert!(gs.theoretical_bound() > 0.0);
    }
}
