//! The recursive lower-bound gadgets `G_1(d)` and `G_f(d)` of Section 4.
//!
//! `G_1(d)` consists of a spine path `u_1 … u_d`, `d` terminal leaves
//! `z_1 … z_d`, and vertex-disjoint connector paths `Q_i` from `u_i` to `z_i`
//! whose lengths strictly decrease from left to right.  `G_f(d)` stacks `d`
//! copies of `G_{f-1}(d)` below a fresh spine, again with strictly
//! length-decreasing connectors.  Every leaf carries a *label*: a fault set
//! of at most `f` edges whose failure kills every root-to-leaf path to the
//! right of it while leaving its own path intact (Lemma 4.3).
//!
//! Deviations from the paper's constants (documented in `DESIGN.md`): the
//! root of `G_1(d)` is `u_1` (matching `G_f(d)`), and the connector length of
//! `G_f(d)` is `(d-i)·(depth(G_{f-1}(d)) + 2) + 1` instead of
//! `(d-i)·depth(G_{f-1}(d))`, which keeps every connector non-empty and makes
//! the length monotonicity of Lemma 4.3(4) strict.  Neither change affects
//! the `Θ(d^{f+1})` size of the gadget.

use ftbfs_graph::{EdgeId, Graph, GraphBuilder, VertexId};

/// A leaf of the gadget together with its label and canonical path length.
#[derive(Clone, Debug)]
pub struct Leaf {
    /// The terminal vertex `z_i`.
    pub vertex: VertexId,
    /// The label `Label_f(z_i)`: at most `f` edges (as endpoint pairs) whose
    /// failure disconnects every leaf to the right while sparing this one.
    pub label: Vec<(VertexId, VertexId)>,
    /// The length of the unique root-to-leaf path `P(z_i)`.
    pub path_len: u64,
}

/// The gadget `G_f(d)` built inside a shared [`GraphBuilder`].
#[derive(Clone, Debug)]
pub struct GfComponent {
    /// The root `r(G_f(d)) = u^f_1`.
    pub root: VertexId,
    /// The last spine vertex `u^f_d` (where `v*` attaches in `G*_f`).
    pub spine_end: VertexId,
    /// The spine vertices `u^f_1 … u^f_d`.
    pub spine: Vec<VertexId>,
    /// The leaves, ordered left to right.
    pub leaves: Vec<Leaf>,
    /// The maximal root-to-leaf path length (the gadget's depth).
    pub depth: u64,
}

/// Builds `G_1(d)` into `builder`.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn build_g1(builder: &mut GraphBuilder, d: usize) -> GfComponent {
    assert!(d > 0, "G_1(d) requires d >= 1");
    let spine = builder.add_vertices(d);
    builder.add_path(&spine);
    let mut leaves = Vec::with_capacity(d);
    for i in 0..d {
        // Connector Q_i of length 6 + 2(d - 1 - i) from u_{i+1} to z_{i+1}
        // (using 0-based i).
        let len = 6 + 2 * (d - 1 - i);
        let z = add_connector(builder, spine[i], len);
        let label = if i + 1 < d {
            vec![(spine[i], spine[i + 1])]
        } else {
            vec![]
        };
        leaves.push(Leaf {
            vertex: z,
            label,
            path_len: i as u64 + len as u64,
        });
    }
    let depth = leaves.iter().map(|l| l.path_len).max().unwrap_or(0);
    GfComponent {
        root: spine[0],
        spine_end: spine[d - 1],
        spine,
        leaves,
        depth,
    }
}

/// Builds `G_f(d)` into `builder` (recursively), for any `f ≥ 1`.
///
/// # Panics
///
/// Panics if `f == 0` or `d == 0`.
pub fn build_gf(builder: &mut GraphBuilder, f: usize, d: usize) -> GfComponent {
    assert!(f >= 1, "G_f(d) requires f >= 1");
    if f == 1 {
        return build_g1(builder, d);
    }
    let spine = builder.add_vertices(d);
    builder.add_path(&spine);
    // Build the d sub-copies first to know their depth (identical for all).
    let mut leaves = Vec::new();
    let mut sub_depth = 0u64;
    let mut copies = Vec::with_capacity(d);
    for _ in 0..d {
        let copy = build_gf(builder, f - 1, d);
        sub_depth = copy.depth;
        copies.push(copy);
    }
    for (i, copy) in copies.iter().enumerate() {
        // Connector of length (d - 1 - i) * (sub_depth + 2) + 1 from u^f_{i+1}
        // to the copy's root.
        let len = (d - 1 - i) as u64 * (sub_depth + 2) + 1;
        connect_with_path(builder, spine[i], copy.root, len as usize);
        for leaf in &copy.leaves {
            let mut label = Vec::new();
            if i + 1 < d {
                label.push((spine[i], spine[i + 1]));
            }
            label.extend(leaf.label.iter().copied());
            leaves.push(Leaf {
                vertex: leaf.vertex,
                label,
                path_len: i as u64 + len + leaf.path_len,
            });
        }
    }
    let depth = leaves.iter().map(|l| l.path_len).max().unwrap_or(0);
    GfComponent {
        root: spine[0],
        spine_end: spine[d - 1],
        spine,
        leaves,
        depth,
    }
}

/// A standalone `G_f(d)` graph, for testing the structural properties of
/// Lemma 4.3 in isolation.
#[derive(Clone, Debug)]
pub struct GfGraph {
    /// The built graph.
    pub graph: Graph,
    /// The gadget's bookkeeping (root, spine, leaves, labels, depth).
    pub component: GfComponent,
}

impl GfGraph {
    /// Builds a standalone `G_f(d)`.
    pub fn new(f: usize, d: usize) -> Self {
        let mut builder = GraphBuilder::new(0);
        let component = build_gf(&mut builder, f, d);
        GfGraph {
            graph: builder.build(),
            component,
        }
    }

    /// The label of leaf `i` resolved to edge ids of the built graph.
    pub fn label_edges(&self, leaf_index: usize) -> Vec<EdgeId> {
        self.component.leaves[leaf_index]
            .label
            .iter()
            .map(|&(a, b)| {
                self.graph
                    .edge_between(a, b)
                    .expect("label edges exist in the built graph")
            })
            .collect()
    }
}

/// Adds a fresh path of `len` edges from `from`, returning the new terminal
/// vertex.
fn add_connector(builder: &mut GraphBuilder, from: VertexId, len: usize) -> VertexId {
    assert!(len >= 1, "connector must have at least one edge");
    let mut prev = from;
    let mut last = from;
    for _ in 0..len {
        let v = builder.add_vertex();
        builder.add_edge(prev, v);
        prev = v;
        last = v;
    }
    last
}

/// Connects `from` to the existing vertex `to` by a fresh path of `len`
/// edges (`len - 1` new internal vertices).
fn connect_with_path(builder: &mut GraphBuilder, from: VertexId, to: VertexId, len: usize) {
    assert!(len >= 1, "connector must have at least one edge");
    let mut prev = from;
    for _ in 0..len - 1 {
        let v = builder.add_vertex();
        builder.add_edge(prev, v);
        prev = v;
    }
    builder.add_edge(prev, to);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbfs_graph::{bfs, FaultSet, GraphView};

    fn check_lemma_4_3(gf: &GfGraph, f: usize) {
        let g = &gf.graph;
        let comp = &gf.component;
        let view = GraphView::new(g);
        let base = bfs(&view, comp.root);
        // (4) path lengths are strictly decreasing left to right, and match
        // the BFS distances (the root-to-leaf path is unique and shortest).
        for (i, leaf) in comp.leaves.iter().enumerate() {
            assert_eq!(
                base.distance(leaf.vertex),
                Some(leaf.path_len as u32),
                "leaf {i} distance"
            );
            if i + 1 < comp.leaves.len() {
                assert!(
                    comp.leaves[i].path_len > comp.leaves[i + 1].path_len,
                    "leaf lengths must strictly decrease (leaf {i})"
                );
            }
            assert!(leaf.label.len() <= f, "label of leaf {i} too large");
        }
        // (2) and (3): failing a leaf's label keeps that leaf at its distance
        // and strictly hurts (or disconnects) every leaf to its right.
        for (j, leaf) in comp.leaves.iter().enumerate() {
            let faults = FaultSet::from_iter(
                leaf.label
                    .iter()
                    .map(|&(a, b)| g.edge_between(a, b).expect("label edge exists")),
            );
            let faulted = bfs(&GraphView::new(g).without_faults(&faults), comp.root);
            assert_eq!(
                faulted.distance(leaf.vertex),
                Some(leaf.path_len as u32),
                "leaf {j} must survive its own label"
            );
            for (k, right) in comp.leaves.iter().enumerate().skip(j + 1) {
                let dist = faulted.distance(right.vertex);
                assert!(
                    dist.is_none() || dist.unwrap() as u64 > right.path_len,
                    "leaf {k} must be hurt by the label of leaf {j}"
                );
            }
        }
    }

    #[test]
    fn g1_counts_and_lemma() {
        for d in [1usize, 2, 3, 5] {
            let gf = GfGraph::new(1, d);
            assert_eq!(gf.component.leaves.len(), d);
            assert_eq!(gf.component.spine.len(), d);
            check_lemma_4_3(&gf, 1);
        }
    }

    #[test]
    fn g2_counts_and_lemma() {
        for d in [2usize, 3] {
            let gf = GfGraph::new(2, d);
            assert_eq!(gf.component.leaves.len(), d * d);
            check_lemma_4_3(&gf, 2);
        }
    }

    #[test]
    fn g3_counts_and_lemma() {
        let gf = GfGraph::new(3, 2);
        assert_eq!(gf.component.leaves.len(), 8);
        check_lemma_4_3(&gf, 3);
    }

    #[test]
    fn size_grows_as_d_to_the_f_plus_one() {
        // N(f, d) = Θ(d^{f+1}): check the ratio stays within a constant band
        // as d grows.
        for f in [1usize, 2] {
            let mut ratios = Vec::new();
            for d in [3usize, 5, 7] {
                let gf = GfGraph::new(f, d);
                let n = gf.graph.vertex_count() as f64;
                ratios.push(n / (d as f64).powi(f as i32 + 1));
            }
            let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
            let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                max / min < 4.0,
                "N(f,d)/d^(f+1) should stay within a constant band, got {ratios:?}"
            );
        }
    }

    #[test]
    fn leaf_count_is_d_to_the_f() {
        assert_eq!(GfGraph::new(1, 4).component.leaves.len(), 4);
        assert_eq!(GfGraph::new(2, 4).component.leaves.len(), 16);
        assert_eq!(GfGraph::new(3, 3).component.leaves.len(), 27);
    }

    #[test]
    fn label_edges_resolve() {
        let gf = GfGraph::new(2, 3);
        for i in 0..gf.component.leaves.len() {
            let edges = gf.label_edges(i);
            assert_eq!(edges.len(), gf.component.leaves[i].label.len());
        }
        // The globally rightmost leaf has an empty label.
        assert!(gf
            .component
            .leaves
            .last()
            .expect("leaves exist")
            .label
            .is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_d_panics() {
        let _ = GfGraph::new(1, 0);
    }
}
