//! Verification that the bipartite edges of `G*_f` are necessary.
//!
//! The lower-bound argument of Theorem 4.1 says: for every `x ∈ X` and every
//! leaf `z`, there is a fault set `F` with `|F| ≤ f` under which any
//! `f`-failure FT-BFS structure missing the edge `(x, z)` reports a strictly
//! larger distance to `x` than the graph does.  This module checks that claim
//! computationally for concrete instances: it removes the edge, applies the
//! witness fault set and compares BFS distances.

use crate::gstar::GStarGraph;
use ftbfs_graph::{bfs, GraphView, VertexId};

/// The outcome of checking one (source, leaf, x) triple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NecessityCheck {
    /// Distance from the source to `x` in `G ∖ F`.
    pub with_edge: Option<u32>,
    /// Distance from the source to `x` in `(G ∖ {(x,z)}) ∖ F`.
    pub without_edge: Option<u32>,
}

impl NecessityCheck {
    /// Returns `true` if removing the bipartite edge strictly hurts the
    /// distance (including disconnecting `x`), i.e. the edge is necessary.
    pub fn edge_is_necessary(&self) -> bool {
        match (self.with_edge, self.without_edge) {
            (Some(a), Some(b)) => b > a,
            (Some(_), None) => true,
            _ => false,
        }
    }
}

/// Checks necessity of the bipartite edge between `x` and the given leaf of
/// the given gadget copy, using the construction's witness fault set.
pub fn check_edge_necessity(
    gs: &GStarGraph,
    copy: usize,
    leaf_index: usize,
    x: VertexId,
) -> NecessityCheck {
    let leaf = gs.gadgets[copy].leaves[leaf_index].vertex;
    let source = gs.sources[copy];
    let witness = gs.necessity_witness(copy, leaf_index);
    let edge = gs
        .graph
        .edge_between(x, leaf)
        .expect("bipartite edge exists between X and every leaf");

    let with_view = GraphView::new(&gs.graph).without_faults(&witness);
    let with_edge = bfs(&with_view, source).distance(x);
    let without_view = GraphView::new(&gs.graph)
        .without_faults(&witness)
        .without_edge(edge);
    let without_edge = bfs(&without_view, source).distance(x);
    NecessityCheck {
        with_edge,
        without_edge,
    }
}

/// Checks every bipartite edge of the instance and returns the number of
/// edges whose necessity check failed (zero for a correct construction).
pub fn count_unnecessary_edges(gs: &GStarGraph) -> usize {
    let mut failures = 0;
    for (copy, leaf_index, _leaf) in gs.leaves().collect::<Vec<_>>() {
        for &x in &gs.x_vertices {
            if !check_edge_necessity(gs, copy, leaf_index, x).edge_is_necessary() {
                failures += 1;
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bipartite_edge_is_necessary_f1() {
        let gs = GStarGraph::single_source(1, 4, 3);
        assert_eq!(count_unnecessary_edges(&gs), 0);
    }

    #[test]
    fn every_bipartite_edge_is_necessary_f2() {
        let gs = GStarGraph::single_source(2, 3, 3);
        assert_eq!(count_unnecessary_edges(&gs), 0);
    }

    #[test]
    fn every_bipartite_edge_is_necessary_f3_small() {
        let gs = GStarGraph::single_source(3, 2, 2);
        assert_eq!(count_unnecessary_edges(&gs), 0);
    }

    #[test]
    fn multi_source_edges_are_necessary_from_their_copy_source() {
        let gs = GStarGraph::multi_source(2, 2, 2, 3);
        assert_eq!(count_unnecessary_edges(&gs), 0);
    }

    #[test]
    fn check_reports_distances() {
        let gs = GStarGraph::single_source(1, 3, 2);
        let c = check_edge_necessity(&gs, 0, 0, gs.x_vertices[0]);
        assert!(c.with_edge.is_some());
        assert!(c.edge_is_necessary());
    }
}
