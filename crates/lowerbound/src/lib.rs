//! # ftbfs-lowerbound
//!
//! Lower-bound graph families for `f`-failure FT-MBFS structures, from
//! Section 4 of *Dual Failure Resilient BFS Structure* (Parter, PODC 2015).
//!
//! * [`gf`] — the recursive gadgets `G_1(d)` and `G_f(d)` with their leaf
//!   labels and the structural properties of Lemma 4.3;
//! * [`gstar`] — the full lower-bound graphs `G*_f` (single source) and the
//!   multi-source variant, with `Ω(σ^{1/(f+1)} n^{2-1/(f+1)})` forced
//!   bipartite edges (Theorem 1.2 / Theorem 4.1);
//! * [`witness`] — computational verification that every forced edge really
//!   is necessary under its witness fault set.
//!
//! # Example
//!
//! ```
//! use ftbfs_lowerbound::{GStarGraph, count_unnecessary_edges};
//!
//! let gs = GStarGraph::single_source(2, 2, 3);
//! assert!(gs.forced_edge_count() >= 12);
//! assert_eq!(count_unnecessary_edges(&gs), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf;
pub mod gstar;
pub mod witness;

pub use gf::{build_g1, build_gf, GfComponent, GfGraph, Leaf};
pub use gstar::{lower_bound_formula, GStarGraph};
pub use witness::{check_edge_necessity, count_unnecessary_edges, NecessityCheck};
