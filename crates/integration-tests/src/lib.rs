//! Test-only crate: the actual content lives in `tests/`, which exercises
//! the whole workspace end to end (constructions → verification → analysis →
//! lower bounds).  The library target exists only so Cargo accepts the
//! package.
