//! End-to-end integration tests: every construction is run on several graph
//! families and verified against the definition of an `f`-FT-MBFS structure.

use ftbfs_core::dual::{DualFtBfsBuilder, SelectionStrategy};
use ftbfs_core::{
    approx_minimum_ftmbfs, dual_failure_ftbfs, multi_failure_ftbfs, single_failure_ftbfs,
};
use ftbfs_graph::{generators, Graph, TieBreak, VertexId};
use ftbfs_lowerbound::GStarGraph;
use ftbfs_verify::{verify_exhaustive, verify_sampled, StructureOracle};

fn small_workloads() -> Vec<(String, Graph)> {
    vec![
        ("cycle(9)".into(), generators::cycle(9)),
        ("grid(3,4)".into(), generators::grid(3, 4)),
        ("complete(7)".into(), generators::complete(7)),
        (
            "tree+chords(13,5)".into(),
            generators::tree_plus_chords(13, 5, 4),
        ),
        ("gnp(14, 0.2)".into(), generators::connected_gnp(14, 0.2, 8)),
        ("hub(3,8,2)".into(), generators::hub_and_spokes(3, 8, 2, 5)),
        (
            "cluster(2x6)".into(),
            generators::cluster_graph(2, 6, 0.4, 2, 6),
        ),
    ]
}

#[test]
fn single_failure_structures_verify_on_all_small_workloads() {
    for (name, g) in small_workloads() {
        let w = TieBreak::new(&g, 1);
        let h = single_failure_ftbfs(&g, &w, VertexId(0));
        let report = verify_exhaustive(&g, h.edges(), &[VertexId(0)], 1);
        assert!(report.is_valid(), "{name}: {report}");
    }
}

#[test]
fn dual_failure_structures_verify_on_all_small_workloads() {
    for (name, g) in small_workloads() {
        let w = TieBreak::new(&g, 2);
        let h = dual_failure_ftbfs(&g, &w, VertexId(0));
        let report = verify_exhaustive(&g, h.edges(), &[VertexId(0)], 2);
        assert!(report.is_valid(), "{name}: {report}");
    }
}

#[test]
fn canonical_and_paper_selections_both_verify_and_contain_the_tree() {
    for (name, g) in small_workloads() {
        let w = TieBreak::new(&g, 3);
        let paper = DualFtBfsBuilder::new(&g, &w, VertexId(0)).build().structure;
        let canonical = DualFtBfsBuilder::new(&g, &w, VertexId(0))
            .strategy(SelectionStrategy::Canonical)
            .build()
            .structure;
        for h in [&paper, &canonical] {
            let report = verify_exhaustive(&g, h.edges(), &[VertexId(0)], 2);
            assert!(report.is_valid(), "{name}: {report}");
            assert!(
                h.edge_count() >= g.vertex_count() - 1
                    || !ftbfs_graph::properties::is_connected(&g)
            );
        }
    }
}

#[test]
fn dual_structures_on_medium_random_graphs_pass_sampled_verification() {
    for seed in 0..3u64 {
        let g = generators::connected_gnp(60, 0.06, seed);
        let w = TieBreak::new(&g, seed);
        let h = dual_failure_ftbfs(&g, &w, VertexId(0));
        let report = verify_sampled(&g, h.edges(), &[VertexId(0)], 2, 120, seed);
        assert!(report.is_valid(), "seed {seed}: {report}");
    }
}

#[test]
fn approximation_verifies_and_is_not_larger_than_the_graph() {
    for (name, g) in small_workloads().into_iter().take(5) {
        for f in [1usize, 2] {
            let sources = [VertexId(0), VertexId(2)];
            let h = approx_minimum_ftmbfs(&g, &sources, f);
            let report = verify_exhaustive(&g, h.edges(), &sources, f);
            assert!(report.is_valid(), "{name} f={f}: {report}");
            assert!(h.edge_count() <= g.edge_count());
        }
    }
}

#[test]
fn dual_structure_on_the_lower_bound_graph_keeps_every_forced_edge() {
    let gs = GStarGraph::single_source(2, 3, 6);
    let w = TieBreak::new(&gs.graph, 5);
    let h = dual_failure_ftbfs(&gs.graph, &w, gs.sources[0]);
    // Theorem 4.1: every bipartite edge must be present in any dual FT-BFS
    // structure rooted at the gadget root.
    for &e in &gs.bipartite_edges {
        assert!(
            h.contains(e),
            "constructed structure is missing forced bipartite edge {e:?}"
        );
    }
    let report = verify_sampled(&gs.graph, h.edges(), &[gs.sources[0]], 2, 80, 9);
    assert!(report.is_valid(), "{report}");
}

#[test]
fn multi_failure_f3_structure_handles_triple_faults_on_a_tiny_graph() {
    let g = generators::gnp(8, 0.6, 11);
    let w = TieBreak::new(&g, 11);
    let h = multi_failure_ftbfs(&g, &w, VertexId(0), 3);
    // Exhaustive triple-fault check.
    let edges: Vec<_> = g.edges().collect();
    for i in 0..edges.len() {
        for j in (i + 1)..edges.len() {
            for k in (j + 1)..edges.len() {
                let faults = ftbfs_graph::FaultSet::from_iter([edges[i], edges[j], edges[k]]);
                let gview = ftbfs_graph::GraphView::new(&g).without_faults(&faults);
                let hview = h.as_view(&g).without_faults(&faults);
                let gd = ftbfs_graph::bfs(&gview, VertexId(0));
                let hd = ftbfs_graph::bfs(&hview, VertexId(0));
                for v in g.vertices() {
                    assert_eq!(
                        gd.distance(v),
                        hd.distance(v),
                        "triple fault {faults:?} at {v:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn oracle_over_constructed_structure_matches_ground_truth_for_many_queries() {
    let g = generators::connected_gnp(40, 0.1, 17);
    let w = TieBreak::new(&g, 17);
    let h = dual_failure_ftbfs(&g, &w, VertexId(0));
    let oracle = StructureOracle::new(&g, VertexId(0), h.edges());
    let edges: Vec<_> = g.edges().collect();
    for i in (0..edges.len()).step_by(5) {
        for j in ((i + 1)..edges.len()).step_by(7) {
            let f = ftbfs_graph::FaultSet::pair(edges[i], edges[j]);
            for v in [VertexId(1), VertexId(20), VertexId(39)] {
                assert!(oracle.matches_ground_truth(v, &f));
            }
        }
    }
}
