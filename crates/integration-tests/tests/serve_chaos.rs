//! Property tests of the serving front-end under *randomised chaos
//! schedules* (`--features chaos`): for any combination of injected
//! worker-panic, stall and dropped-send rates across any worker/client
//! topology, the stream contract must hold unconditionally —
//!
//! * **exactly-once** — every admitted request gets exactly one response;
//! * **in order** — responses arrive in submission order per stream;
//! * **never hang** — a `recv_timeout` guard bounds every receive, so a
//!   wedged stream fails the test instead of deadlocking it;
//! * **degraded, not wrong** — every response is either the ground-truth
//!   answer or the typed `WorkerRestarted` degradation, never silent
//!   corruption;
//! * **recovery** — after `quiesce()`, a clean probe batch is answered
//!   perfectly by the same (restarted-many-times) server.
//!
//! The whole file is gated on the `chaos` feature: plain `cargo test`
//! compiles none of it, matching the production builds that compile none
//! of the injection seam.
#![cfg(feature = "chaos")]

use ftbfs_core::dual::DualFtBfsBuilder;
use ftbfs_graph::{generators, EdgeId, FaultSpec, Graph, TieBreak, VertexId};
use ftbfs_oracle::{Freeze, FrozenStructure, QueryEngine, SnapshotVersion};
use ftbfs_serve::{
    ChaosConfig, EpochSnapshot, ServeConfig, ServeError, ServeRequest, StreamServer, SubmitError,
};
use proptest::prelude::*;
use std::time::Duration;

/// Bound on any single receive: far beyond the worst honest stall
/// schedule, so the only way to hit it is a genuinely wedged stream.
const NEVER_HANG: Duration = Duration::from_secs(20);

fn frozen_for(g: &Graph, seed: u64) -> FrozenStructure {
    let w = TieBreak::new(g, seed);
    DualFtBfsBuilder::new(g, &w, VertexId(0))
        .build()
        .structure
        .freeze(g)
}

fn epoch_snapshot(frozen: &FrozenStructure) -> EpochSnapshot {
    EpochSnapshot::from_bytes(frozen.save_with(SnapshotVersion::V2))
        .expect("freshly saved v2 snapshot validates")
}

/// A deterministic mixed workload of ≤ 2-fault requests over `g`'s edges.
fn mixed_requests(g: &Graph, count: usize) -> Vec<ServeRequest> {
    let edges: Vec<EdgeId> = g.edges().collect();
    let m = edges.len();
    (0..count)
        .map(|i| {
            let target = VertexId((i * 7 % g.vertex_count()) as u32);
            match i % 4 {
                0 => ServeRequest::distance(target, FaultSpec::None),
                1 => ServeRequest::distance(target, edges[i % m]),
                _ => ServeRequest::distance(target, (edges[i % m], edges[(i * 5 + 3) % m])),
            }
        })
        .collect()
}

/// Drives one full client pass under chaos: submit with typed-rejection
/// retries, receive under the never-hang guard, check order and
/// content.  Returns `(answered, degraded)`.
fn drive_checked(
    server: &StreamServer,
    requests: &[ServeRequest],
    expected: &[Option<u32>],
) -> (u64, u64) {
    let mut stream = server.open_stream();
    let (mut answered, mut degraded) = (0u64, 0u64);
    let mut admitted = 0u64;
    for r in requests {
        loop {
            match stream.submit(r.clone()) {
                Ok(seq) => {
                    assert_eq!(seq, admitted, "rejected submits must not consume seqs");
                    admitted += 1;
                    break;
                }
                // Dropped sends and backpressure are retryable by contract.
                Err(SubmitError::ShardUnavailable { .. } | SubmitError::Overloaded { .. }) => {}
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    for (i, exp) in expected.iter().enumerate().take(admitted as usize) {
        let resp = stream
            .recv_timeout(NEVER_HANG)
            .expect("stream must never hang");
        assert_eq!(resp.seq, i as u64, "submission order violated");
        answered += 1;
        match &resp.outcome {
            Ok(_) => assert_eq!(
                resp.distance(),
                Some(*exp),
                "request {i} answered wrongly under chaos"
            ),
            Err(ServeError::WorkerRestarted { generation }) => {
                assert!(*generation > 0, "restart generations start at 1");
                degraded += 1;
            }
            Err(e) => panic!("unexpected in-stream outcome: {e}"),
        }
    }
    assert_eq!(answered, admitted, "exactly-once violated");
    assert_eq!(stream.in_flight(), 0, "stream left residue");
    (answered, degraded)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// The chaos-schedule property: any panic/stall/drop schedule over
    /// any worker/client topology preserves exactly-once, in-order,
    /// never-hang and right-or-typed-degraded — and the server recovers
    /// to perfect service once the schedule is quiesced.
    #[test]
    fn any_chaos_schedule_preserves_the_stream_contract(
        seed in 0u64..1_000,
        graph_seed in 0u64..100,
        workers in 1usize..4,
        clients in 1usize..3,
        count in 30usize..150,
        panic_rate in 0u32..60_000,
        max_panics in 0u64..6,
        stall_rate in 0u32..20_000,
        drop_rate in 0u32..30_000,
    ) {
        let g = generators::connected_gnp(20, 0.2, graph_seed);
        let frozen = frozen_for(&g, graph_seed);
        let requests = mixed_requests(&g, count);
        let mut engine = QueryEngine::new();
        let expected: Vec<Option<u32>> = requests
            .iter()
            .map(|r| {
                let t = match r.target {
                    ftbfs_serve::ServeTarget::One(t) => t,
                    _ => unreachable!("workload is single-target"),
                };
                engine.try_distance(&frozen, t, &r.faults).unwrap().into_value()
            })
            .collect();

        let schedule = ChaosConfig::new(seed)
            .with_worker_panics(panic_rate, max_panics)
            .with_stalls(stall_rate, Duration::from_micros(50))
            .with_dropped_sends(drop_rate);
        let server = StreamServer::launch(
            epoch_snapshot(&frozen),
            ServeConfig::new().workers(workers).chaos(schedule),
        );

        // Storm: concurrent clients through the live schedule.
        let per_client: Vec<(u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| scope.spawn(|| drive_checked(&server, &requests, &expected)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("client")).collect()
        });
        for &(answered, _) in &per_client {
            prop_assert_eq!(answered as usize, requests.len(), "request lost");
        }
        let stats = server.chaos_stats();
        let health = server.health();
        prop_assert!(stats.panics <= max_panics, "panic cap not honoured");
        prop_assert_eq!(
            health.worker_restarts, stats.panics,
            "absorbed panics != supervised restarts"
        );
        let degraded: u64 = per_client.iter().map(|&(_, d)| d).sum();
        prop_assert_eq!(
            degraded, stats.panics,
            "each injected panic degrades exactly its in-flight request"
        );

        // Recovery: quiesce the schedule; the same server now serves a
        // clean batch perfectly.
        server.quiesce_chaos();
        let probe = requests.len().min(40);
        let (answered, degraded) = drive_checked(&server, &requests[..probe], &expected[..probe]);
        prop_assert_eq!(answered as usize, probe);
        prop_assert_eq!(degraded, 0, "quiesced server still degrading");
        prop_assert_eq!(server.chaos_stats().panics, stats.panics, "chaos after quiesce");
        server.shutdown();
    }
}
