//! Workspace smoke test: one pass through the whole pipeline on a small
//! random graph — generate, tie-break, construct the single- and
//! dual-failure FT-BFS structures, and verify both against the exhaustive
//! oracle.  Kept deliberately small and fast so it doubles as the quickest
//! "is the workspace wired correctly" check for CI and for new clones
//! (`cargo test -p integration-tests --test workspace_smoke`).

use ftbfs_core::{dual_failure_ftbfs, single_failure_ftbfs};
use ftbfs_graph::{generators, FaultSet, GraphView, TieBreak, VertexId};
use ftbfs_verify::{verify_exhaustive, StructureOracle};

#[test]
fn end_to_end_single_and_dual_on_a_small_gnp_graph() {
    let source = VertexId(0);
    let g = generators::connected_gnp(16, 0.22, 2015);
    assert!(g.edge_count() >= g.vertex_count() - 1, "generator sanity");
    let w = TieBreak::new(&g, 2015);

    // Single-failure structure: verify against every 1-fault set.
    let h1 = single_failure_ftbfs(&g, &w, source);
    let report1 = verify_exhaustive(&g, h1.edges(), &[source], 1);
    assert!(report1.is_valid(), "single-failure structure: {report1}");

    // Dual-failure structure: verify against every 2-fault set, and check
    // the paper's containment chain T0 ⊆ H1 ⊆-in-size H2 ⊆ G.
    let h2 = dual_failure_ftbfs(&g, &w, source);
    let report2 = verify_exhaustive(&g, h2.edges(), &[source], 2);
    assert!(report2.is_valid(), "dual-failure structure: {report2}");
    assert!(h1.edge_count() <= h2.edge_count());
    assert!(h2.edge_count() <= g.edge_count());
    assert!(h1.edge_count() >= g.vertex_count() - 1);

    // Oracle queries inside the structure agree with ground truth in G ∖ F
    // for a couple of concrete dual faults.
    let oracle = StructureOracle::new(&g, source, h2.edges());
    let edges: Vec<_> = g.edges().collect();
    let faults = FaultSet::pair(edges[0], edges[edges.len() / 2]);
    let truth = ftbfs_graph::bfs(&GraphView::new(&g).without_faults(&faults), source);
    for v in g.vertices() {
        assert_eq!(
            oracle.distance(v, &faults),
            truth.distance(v),
            "oracle disagrees with ground truth at {v:?} under {faults:?}"
        );
    }
}
