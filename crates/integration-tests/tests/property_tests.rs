//! Property-based tests (proptest) over randomly generated graphs and
//! parameters: construction invariants, replacement-path optimality and
//! fault-avoidance, decomposition round-trips, and lower-bound label
//! properties.

use ftbfs_core::dual::DualFtBfsBuilder;
use ftbfs_core::single_failure_ftbfs;
use ftbfs_graph::{bfs, dijkstra, generators, FaultSet, GraphView, TieBreak, VertexId};
use ftbfs_lowerbound::GfGraph;
use ftbfs_paths::detour::decompose;
use ftbfs_paths::replacement::SingleFailureReplacer;
use ftbfs_verify::{verify_exhaustive, verify_sampled};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// The single-failure structure always verifies exhaustively.
    #[test]
    fn single_failure_structure_always_verifies(n in 8usize..18, chords in 2usize..8, seed in 0u64..500) {
        let g = generators::tree_plus_chords(n, chords, seed);
        let w = TieBreak::new(&g, seed);
        let h = single_failure_ftbfs(&g, &w, VertexId(0));
        let report = verify_exhaustive(&g, h.edges(), &[VertexId(0)], 1);
        prop_assert!(report.is_valid(), "{}", report);
    }

    /// The dual-failure structure (paper selection) always verifies
    /// exhaustively on small graphs.
    #[test]
    fn dual_failure_structure_always_verifies(n in 8usize..14, p in 0.15f64..0.4, seed in 0u64..500) {
        let g = generators::connected_gnp(n, p, seed);
        let w = TieBreak::new(&g, seed);
        let h = DualFtBfsBuilder::new(&g, &w, VertexId(0)).build().structure;
        let report = verify_exhaustive(&g, h.edges(), &[VertexId(0)], 2);
        prop_assert!(report.is_valid(), "{}", report);
    }

    /// The dual-failure structure on larger graphs passes sampled checks and
    /// never exceeds the graph itself.
    #[test]
    fn dual_failure_structure_sampled(n in 25usize..45, seed in 0u64..200) {
        let g = generators::connected_gnp(n, 4.0 / (n as f64 - 1.0), seed);
        let w = TieBreak::new(&g, seed);
        let h = DualFtBfsBuilder::new(&g, &w, VertexId(0)).build().structure;
        prop_assert!(h.edge_count() <= g.edge_count());
        prop_assert!(h.edge_count() >= g.vertex_count() - 1);
        let report = verify_sampled(&g, h.edges(), &[VertexId(0)], 2, 40, seed);
        prop_assert!(report.is_valid(), "{}", report);
    }

    /// Canonical replacement paths avoid their fault set and are exactly as
    /// long as the replacement distance.
    #[test]
    fn replacement_paths_avoid_faults_and_are_optimal(n in 10usize..25, seed in 0u64..300) {
        let g = generators::connected_gnp(n, 0.18, seed);
        let w = TieBreak::new(&g, seed);
        let edges: Vec<_> = g.edges().collect();
        let e1 = edges[(seed as usize) % edges.len()];
        let e2 = edges[(seed as usize * 7 + 3) % edges.len()];
        let faults = FaultSet::pair(e1, e2);
        let view = GraphView::new(&g).without_faults(&faults);
        let sp = dijkstra(&view, &w, VertexId(0), None);
        let unweighted = bfs(&view, VertexId(0));
        for v in g.vertices() {
            prop_assert_eq!(sp.hops(v), unweighted.distance(v));
            if let Some(p) = sp.path_to(v) {
                prop_assert!(!faults.intersects_path(&g, &p));
                prop_assert_eq!(p.len() as u32, unweighted.distance(v).unwrap());
            }
        }
    }

    /// The step-1 earliest-divergence replacement path decomposes into
    /// prefix ∘ detour ∘ suffix, reassembles to an optimal path, and its
    /// detour avoids the failed edge.
    #[test]
    fn earliest_divergence_decomposition_roundtrip(n in 10usize..22, seed in 0u64..300) {
        let g = generators::connected_gnp(n, 0.2, seed);
        let w = TieBreak::new(&g, seed);
        let tree = ftbfs_graph::SpTree::new(&g, &w, VertexId(0));
        let rep = SingleFailureReplacer::new(&g, &w, &tree);
        let mut engine = ftbfs_graph::SearchEngine::new();
        for v in g.vertices() {
            if v == VertexId(0) || !tree.reaches(v) {
                continue;
            }
            let pi = tree.pi(v).unwrap();
            for e in pi.edge_ids(&g) {
                if let Some(dec) = rep.earliest_divergence_replacement(&mut engine, v, e) {
                    let p = dec.reassemble();
                    prop_assert_eq!(p.source(), VertexId(0));
                    prop_assert_eq!(p.target(), v);
                    let ep = g.endpoints(e);
                    prop_assert!(!p.contains_edge(ep.u, ep.v));
                    let expected = rep.replacement_distance(&mut engine, v, e).unwrap();
                    prop_assert_eq!(p.len() as u32, expected);
                    // Round-trip: decomposing the reassembled path again gives
                    // the same attachment points.
                    if let Some(dec2) = decompose(&pi, &p) {
                        prop_assert_eq!(dec2.detour.x, dec.detour.x);
                        prop_assert_eq!(dec2.detour.y, dec.detour.y);
                    }
                }
            }
        }
    }

    /// Lemma 4.3 for random gadget parameters: every leaf survives its own
    /// label at its recorded distance and every leaf to the right is hurt.
    #[test]
    fn lower_bound_gadget_labels_hold(f in 1usize..3, d in 1usize..5) {
        let gf = GfGraph::new(f, d);
        let g = &gf.graph;
        let root = gf.component.root;
        for (j, leaf) in gf.component.leaves.iter().enumerate() {
            let faults = FaultSet::from_iter(gf.label_edges(j));
            let res = bfs(&GraphView::new(g).without_faults(&faults), root);
            prop_assert_eq!(res.distance(leaf.vertex), Some(leaf.path_len as u32));
            for right in &gf.component.leaves[j + 1..] {
                let dist = res.distance(right.vertex);
                prop_assert!(dist.is_none() || dist.unwrap() as u64 > right.path_len);
            }
        }
    }

    /// Fault sets are canonical: order and duplicates never matter.
    #[test]
    fn fault_set_canonicalisation(a in 0u32..50, b in 0u32..50, c in 0u32..50) {
        use ftbfs_graph::EdgeId;
        let f1 = FaultSet::from_iter([EdgeId(a), EdgeId(b), EdgeId(c)]);
        let f2 = FaultSet::from_iter([EdgeId(c), EdgeId(a), EdgeId(b), EdgeId(a)]);
        prop_assert_eq!(f1.clone(), f2);
        prop_assert!(f1.len() <= 3);
        prop_assert!(f1.contains(EdgeId(a)) && f1.contains(EdgeId(b)) && f1.contains(EdgeId(c)));
    }

    /// The tie-breaking weights always produce hop-shortest unique paths:
    /// Dijkstra hop distances equal BFS distances on arbitrary graphs.
    #[test]
    fn tiebreak_preserves_hop_distances(n in 5usize..40, m in 4usize..120, seed in 0u64..1000) {
        let g = generators::gnm(n, m, seed);
        let w = TieBreak::new(&g, seed ^ 0xABC);
        let view = GraphView::new(&g);
        let sp = dijkstra(&view, &w, VertexId(0), None);
        let bf = bfs(&view, VertexId(0));
        for v in g.vertices() {
            prop_assert_eq!(sp.hops(v), bf.distance(v));
        }
    }
}
