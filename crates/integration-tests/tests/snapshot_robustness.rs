//! Robustness of the binary snapshot loaders against malformed input: a
//! serving process deserialising a frozen structure from disk or the
//! network must get a typed [`SnapshotError`] for *any* corruption —
//! truncation at every prefix length, bit flips at every offset, wrong or
//! foreign magic, and adversarial length fields — and must **never panic**.
//! Both formats are covered: the single-source `"FTBO"` snapshots of
//! [`FrozenStructure`] and the multi-source `"FTBM"` snapshots of
//! [`FrozenMultiStructure`].
//!
//! Deterministic sweeps cover every truncation point and every byte
//! position (one flip per byte) on small instances; proptest then fuzzes
//! (offset, bit, mutation-kind) combinations — including multi-bit flips
//! that could in principle collide the checksum back to validity, which the
//! structural validation behind it must still reject — on larger instances.

use ftbfs_core::dual::DualFtBfsBuilder;
use ftbfs_core::multi_failure_ftmbfs_parts;
use ftbfs_graph::bytes::{fnv1a64, fnv1a64_words, put_u32, put_u64};
use ftbfs_graph::{generators, TieBreak, VertexId};
use ftbfs_oracle::{
    snapshot_layout, Freeze, FrozenMultiStructure, FrozenMultiView, FrozenStructure, FrozenView,
    SnapshotError, SnapshotVersion, SNAPSHOT_ALIGN, SNAPSHOT_MAGIC, SNAPSHOT_MULTI_MAGIC,
};
use proptest::prelude::*;

fn single_snapshot_with(seed: u64, version: SnapshotVersion) -> Vec<u8> {
    let g = generators::connected_gnp(24, 0.18, seed);
    let w = TieBreak::new(&g, seed);
    DualFtBfsBuilder::new(&g, &w, VertexId(0))
        .build()
        .structure
        .freeze(&g)
        .save_with(version)
}

fn single_snapshot(seed: u64) -> Vec<u8> {
    single_snapshot_with(seed, SnapshotVersion::V1)
}

fn multi_snapshot_with(seed: u64, version: SnapshotVersion) -> Vec<u8> {
    let g = generators::tree_plus_chords(12, 5, seed);
    let w = TieBreak::new(&g, seed);
    let sources = [VertexId(0), VertexId(7)];
    let parts = multi_failure_ftmbfs_parts(&g, &w, &sources, 2);
    FrozenMultiStructure::freeze(&g, &parts).save_with(version)
}

fn multi_snapshot(seed: u64) -> Vec<u8> {
    multi_snapshot_with(seed, SnapshotVersion::V1)
}

/// Every load attempt must produce `Err`, never a panic and never a
/// structure (the input is corrupted by construction).  For v2 input the
/// zero-rebuild view open must reject identically to the owned load.
fn assert_single_rejects(data: &[u8], what: &str) {
    match FrozenStructure::load(data) {
        Err(_) => {}
        Ok(_) => panic!("{what}: corrupted single snapshot unexpectedly loaded"),
    }
    if let Ok(view) = FrozenView::open_bytes(data) {
        panic!("{what}: corrupted single snapshot unexpectedly opened as {view:?}");
    }
}

fn assert_multi_rejects(data: &[u8], what: &str) {
    match FrozenMultiStructure::load(data) {
        Err(_) => {}
        Ok(_) => panic!("{what}: corrupted multi snapshot unexpectedly loaded"),
    }
    if let Ok(view) = FrozenMultiView::open_bytes(data) {
        panic!("{what}: corrupted multi snapshot unexpectedly opened as {view:?}");
    }
}

/// Re-implements the v2 frame writer from its spec (module docs of
/// `ftbfs_oracle::snapshot`), so tests can build variant files — e.g. with
/// an extra unknown section — independently of the production encoder.
fn assemble_v2_like(
    magic: [u8; 4],
    base: &[u8],
    fingerprint: u64,
    sections: &[(u32, Vec<u8>)],
) -> Vec<u8> {
    let align = |at: usize| at.div_ceil(SNAPSHOT_ALIGN) * SNAPSHOT_ALIGN;
    let header_len = 4 + base.len() + 8 + 8 + 4 + 28 * sections.len() + 8;
    let mut offsets = Vec::new();
    let mut cursor = align(header_len);
    for (_, bytes) in sections {
        offsets.push(cursor);
        cursor = align(cursor + bytes.len());
    }
    let mut frame = Vec::new();
    put_u64(&mut frame, fingerprint);
    put_u32(&mut frame, sections.len() as u32);
    for ((kind, bytes), &offset) in sections.iter().zip(&offsets) {
        put_u32(&mut frame, *kind);
        put_u64(&mut frame, offset as u64);
        put_u64(&mut frame, bytes.len() as u64);
        put_u64(&mut frame, fnv1a64_words(bytes));
    }
    let mut out = Vec::new();
    out.extend_from_slice(&magic);
    out.extend_from_slice(base);
    put_u64(&mut out, fnv1a64_words(base));
    out.extend_from_slice(&frame);
    put_u64(&mut out, fnv1a64_words(&frame));
    for ((_, bytes), &offset) in sections.iter().zip(&offsets) {
        out.resize(offset, 0);
        out.extend_from_slice(bytes);
    }
    out.resize(cursor, 0);
    out
}

/// Rebuilds a valid v2 snapshot with one extra section of an unknown kind
/// appended.
fn with_unknown_section(data: &[u8]) -> Vec<u8> {
    let layout = snapshot_layout(data).expect("input is a valid v2 snapshot");
    let magic: [u8; 4] = data[..4].try_into().unwrap();
    let base = &data[layout.base.clone()];
    let mut sections: Vec<(u32, Vec<u8>)> = layout
        .sections
        .iter()
        .map(|s| (s.kind, data[s.offset..s.offset + s.len].to_vec()))
        .collect();
    sections.push((
        u32::from_le_bytes(*b"ZZZZ"),
        vec![7, 0, 0, 0, 9, 0, 0, 0, 42, 0, 0, 0],
    ));
    assemble_v2_like(magic, base, layout.fingerprint, &sections)
}

#[test]
fn every_truncation_point_is_a_typed_error() {
    let single = single_snapshot(3);
    for cut in 0..single.len() {
        assert_single_rejects(&single[..cut], "truncation");
    }
    let multi = multi_snapshot(3);
    for cut in 0..multi.len() {
        assert_multi_rejects(&multi[..cut], "truncation");
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    // One flip per byte position (bit chosen by position) keeps the sweep
    // linear while still touching every field of both layouts.
    let single = single_snapshot(5);
    for i in 0..single.len() {
        let mut bytes = single.clone();
        bytes[i] ^= 1 << (i % 8);
        assert_single_rejects(&bytes, "bit flip");
    }
    let multi = multi_snapshot(5);
    for i in 0..multi.len() {
        let mut bytes = multi.clone();
        bytes[i] ^= 1 << (i % 8);
        assert_multi_rejects(&bytes, "bit flip");
    }
}

#[test]
fn wrong_and_foreign_magic_are_bad_magic() {
    let single = single_snapshot(7);
    let multi = multi_snapshot(7);
    // Swapping the two formats' magics must fail cleanly in both
    // directions (a multi payload under a single magic and vice versa).
    let mut cross_a = single.clone();
    cross_a[..4].copy_from_slice(&SNAPSHOT_MULTI_MAGIC);
    assert_single_rejects(&cross_a, "cross magic");
    assert_multi_rejects(&cross_a, "cross magic (checksummed payload differs)");
    let mut cross_b = multi.clone();
    cross_b[..4].copy_from_slice(&SNAPSHOT_MAGIC);
    assert_multi_rejects(&cross_b, "cross magic");
    assert_single_rejects(&cross_b, "cross magic (checksummed payload differs)");
    assert_eq!(
        FrozenStructure::load(b"").unwrap_err(),
        SnapshotError::BadMagic
    );
    assert_eq!(
        FrozenMultiStructure::load(b"\x00\x01\x02").unwrap_err(),
        SnapshotError::BadMagic
    );
    assert_eq!(
        FrozenStructure::load(b"FTBMxxxxxxxxxxxx").unwrap_err(),
        SnapshotError::BadMagic
    );
}

#[test]
fn v2_every_truncation_point_is_a_typed_error() {
    // The v2 writer pads the file to the aligned end of the last section
    // and the loader demands that full length, so *every* proper prefix —
    // including cuts inside trailing padding and at every section
    // boundary — must be rejected, by load and by view open alike.
    let single = single_snapshot_with(3, SnapshotVersion::V2);
    for cut in 0..single.len() {
        assert_single_rejects(&single[..cut], "v2 truncation");
    }
    let multi = multi_snapshot_with(3, SnapshotVersion::V2);
    for cut in 0..multi.len() {
        assert_multi_rejects(&multi[..cut], "v2 truncation");
    }
}

#[test]
fn v2_truncation_at_every_section_boundary_is_rejected() {
    // The boundary cuts deserve their own sweep: exactly at each section
    // start, one byte in, and exactly at each section end (still short of
    // the following sections or trailing pad).
    // (A "cut" equal to the full file length is the intact snapshot, which
    // can happen when the last section ends exactly on the 64-byte
    // boundary — skip that one.)
    let single = single_snapshot_with(9, SnapshotVersion::V2);
    let layout = snapshot_layout(&single).unwrap();
    for s in &layout.sections {
        for cut in [s.offset, s.offset + 1, s.offset + s.len] {
            if cut < single.len() {
                assert_single_rejects(&single[..cut], "section-boundary truncation");
            }
        }
    }
    let multi = multi_snapshot_with(9, SnapshotVersion::V2);
    let layout = snapshot_layout(&multi).unwrap();
    for s in &layout.sections {
        for cut in [s.offset, s.offset + 1, s.offset + s.len] {
            if cut < multi.len() {
                assert_multi_rejects(&multi[..cut], "section-boundary truncation");
            }
        }
    }
}

#[test]
fn v2_every_single_bit_flip_is_rejected() {
    // Every byte of a v2 snapshot is covered by the magic, a checksum, or
    // the zero-padding rule, so a flip anywhere — header, TOC, section
    // data, padding — must be caught.
    let single = single_snapshot_with(5, SnapshotVersion::V2);
    for i in 0..single.len() {
        let mut bytes = single.clone();
        bytes[i] ^= 1 << (i % 8);
        assert_single_rejects(&bytes, "v2 bit flip");
    }
    let multi = multi_snapshot_with(5, SnapshotVersion::V2);
    for i in 0..multi.len() {
        let mut bytes = multi.clone();
        bytes[i] ^= 1 << (i % 8);
        assert_multi_rejects(&bytes, "v2 bit flip");
    }
}

#[test]
fn v2_per_section_checksum_corruption_is_attributed() {
    let single = single_snapshot_with(7, SnapshotVersion::V2);
    let layout = snapshot_layout(&single).unwrap();
    for s in &layout.sections {
        let mut bytes = single.clone();
        bytes[s.offset] ^= 0x20;
        assert_eq!(
            FrozenView::open_bytes(&bytes).unwrap_err(),
            SnapshotError::SectionChecksum { kind: s.kind },
            "flip in section {:?}",
            s.kind.to_le_bytes()
        );
        assert_single_rejects(&bytes, "section corruption");
    }
    let multi = multi_snapshot_with(7, SnapshotVersion::V2);
    let layout = snapshot_layout(&multi).unwrap();
    for s in &layout.sections {
        let mut bytes = multi.clone();
        bytes[s.offset + s.len - 1] ^= 0x01;
        assert_eq!(
            FrozenMultiView::open_bytes(&bytes).unwrap_err(),
            SnapshotError::SectionChecksum { kind: s.kind },
        );
        assert_multi_rejects(&bytes, "section corruption");
    }
}

#[test]
fn v2_unknown_sections_are_skipped_forward_compatibly() {
    // A future writer may add sections this reader does not know; after
    // the bounds + checksum check they must be ignored, and the snapshot
    // must load and open with unchanged answers.
    let single = single_snapshot_with(11, SnapshotVersion::V2);
    let extended = with_unknown_section(&single);
    assert_ne!(extended, single);
    let plain = FrozenStructure::load(&single).unwrap();
    let with_extra = FrozenStructure::load(&extended).expect("unknown section must be skipped");
    assert_eq!(plain, with_extra);
    let view = FrozenView::open_bytes(&extended).expect("view skips unknown sections too");
    assert_eq!(view.fingerprint(), plain.fingerprint());
    // But a flip inside the unknown section is still corruption.
    let layout = snapshot_layout(&extended).unwrap();
    let unknown = layout
        .sections
        .iter()
        .find(|s| s.kind == u32::from_le_bytes(*b"ZZZZ"))
        .expect("extra section present");
    let mut corrupted = extended.clone();
    corrupted[unknown.offset] ^= 0x80;
    assert_single_rejects(&corrupted, "unknown-section corruption");

    let multi = multi_snapshot_with(11, SnapshotVersion::V2);
    let extended = with_unknown_section(&multi);
    let plain = FrozenMultiStructure::load(&multi).unwrap();
    let with_extra = FrozenMultiStructure::load(&extended).expect("unknown section skipped");
    assert_eq!(plain, with_extra);
    assert!(FrozenMultiView::open_bytes(&extended).is_ok());
}

#[test]
fn v2_forged_fingerprint_is_rejected_on_load() {
    // The fingerprint is attested by the writer (open trusts it under the
    // frame checksum), but the rebuild path recomputes the real value and
    // must reject a file whose base and fingerprint disagree — the
    // buggy-external-writer case.
    let single = single_snapshot_with(23, SnapshotVersion::V2);
    let layout = snapshot_layout(&single).unwrap();
    let base = &single[layout.base.clone()];
    let sections: Vec<(u32, Vec<u8>)> = layout
        .sections
        .iter()
        .map(|s| (s.kind, single[s.offset..s.offset + s.len].to_vec()))
        .collect();
    let forged = assemble_v2_like(
        single[..4].try_into().unwrap(),
        base,
        layout.fingerprint ^ 1,
        &sections,
    );
    match FrozenStructure::load(&forged).unwrap_err() {
        SnapshotError::Corrupt(why) => assert!(why.contains("fingerprint"), "{why}"),
        other => panic!("expected Corrupt(fingerprint...), got {other:?}"),
    }

    let multi = multi_snapshot_with(23, SnapshotVersion::V2);
    let layout = snapshot_layout(&multi).unwrap();
    let base = &multi[layout.base.clone()];
    let sections: Vec<(u32, Vec<u8>)> = layout
        .sections
        .iter()
        .map(|s| (s.kind, multi[s.offset..s.offset + s.len].to_vec()))
        .collect();
    let forged = assemble_v2_like(
        multi[..4].try_into().unwrap(),
        base,
        !layout.fingerprint,
        &sections,
    );
    assert!(FrozenMultiStructure::load(&forged).is_err());
}

#[test]
fn v2_trailing_extension_is_rejected_even_when_zero() {
    // The v2 encoding is canonical — exactly one byte string per
    // structure — so appended bytes must be rejected even if they are
    // zeros that would pass a padding rule.
    for extra in [1usize, 7, 64, 4096] {
        let single = single_snapshot_with(21, SnapshotVersion::V2);
        let mut extended = single.clone();
        extended.resize(single.len() + extra, 0);
        assert_single_rejects(&extended, "zero-extended tail");
        extended[single.len()] = 0xFF;
        assert_single_rejects(&extended, "nonzero-extended tail");
        let multi = multi_snapshot_with(21, SnapshotVersion::V2);
        let mut extended = multi.clone();
        extended.resize(multi.len() + extra, 0);
        assert_multi_rejects(&extended, "zero-extended tail");
    }
}

#[test]
fn v2_magic_with_v1_body_is_rejected() {
    // Rewrite a v1 snapshot's version field to 2 and fix up the v1
    // trailing checksum: the loader takes the v2 path, finds no frame
    // after the base payload, and must reject cleanly (no panic, no
    // misparse) — for both formats, load and open.
    for (bytes, is_single) in [(single_snapshot(13), true), (multi_snapshot(13), false)] {
        let mut payload = bytes[4..bytes.len() - 8].to_vec();
        payload[0] = 0x02;
        payload[1] = 0x00;
        let mut crafted = Vec::new();
        crafted.extend_from_slice(&bytes[..4]);
        crafted.extend_from_slice(&payload);
        put_u64(&mut crafted, fnv1a64(&payload));
        if is_single {
            assert_single_rejects(&crafted, "v2 magic with v1 body");
        } else {
            assert_multi_rejects(&crafted, "v2 magic with v1 body");
        }
    }
}

#[test]
fn v2_cross_magic_is_rejected() {
    let single = single_snapshot_with(15, SnapshotVersion::V2);
    let mut crossed = single.clone();
    crossed[..4].copy_from_slice(&SNAPSHOT_MULTI_MAGIC);
    assert_multi_rejects(&crossed, "v2 cross magic");
    assert_single_rejects(&crossed, "v2 cross magic");
    let multi = multi_snapshot_with(15, SnapshotVersion::V2);
    let mut crossed = multi.clone();
    crossed[..4].copy_from_slice(&SNAPSHOT_MAGIC);
    assert_single_rejects(&crossed, "v2 cross magic");
    assert_multi_rejects(&crossed, "v2 cross magic");
}

#[test]
fn adversarial_length_fields_do_not_overallocate_or_panic() {
    // A tiny "snapshot" that declares absurd counts: the loaders must run
    // out of bytes (typed error) without trusting the counts.
    for magic in [SNAPSHOT_MAGIC, SNAPSHOT_MULTI_MAGIC] {
        let mut payload = Vec::new();
        ftbfs_graph::bytes::put_u16(&mut payload, 1); // version
        ftbfs_graph::bytes::put_u16(&mut payload, 0); // flags
        ftbfs_graph::bytes::put_u32(&mut payload, 10); // n
        ftbfs_graph::bytes::put_u32(&mut payload, 2); // resilience
        ftbfs_graph::bytes::put_u32(&mut payload, u32::MAX); // source count
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&magic);
        bytes.extend_from_slice(&payload);
        ftbfs_graph::bytes::put_u64(&mut bytes, ftbfs_graph::bytes::fnv1a64(&payload));
        assert_single_rejects(&bytes, "length bomb");
        assert_multi_rejects(&bytes, "length bomb");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Random single-byte mutations at proptest-chosen offsets never panic
    /// and never load, across seeds (single-source format).
    #[test]
    fn single_snapshot_mutations_never_panic(
        seed in 0u64..50,
        offset_sel in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let bytes = single_snapshot(seed);
        let offset = ((bytes.len() - 1) as f64 * offset_sel) as usize;
        let mut mutated = bytes.clone();
        mutated[offset] ^= xor;
        prop_assert!(FrozenStructure::load(&mutated).is_err());
        // Mutations must also not corrupt the pristine copy's loadability.
        prop_assert!(FrozenStructure::load(&bytes).is_ok());
    }

    /// Random mutations on the multi-source format: single-byte flips plus
    /// payload-shuffling splices (checksum-surviving structural damage is
    /// caught by validation, not just the checksum).
    #[test]
    fn multi_snapshot_mutations_never_panic(
        seed in 0u64..30,
        offset_sel in 0.0f64..1.0,
        xor in 1u8..=255,
        splice_sel in 0u8..2,
    ) {
        let bytes = multi_snapshot(seed);
        let offset = ((bytes.len() - 1) as f64 * offset_sel) as usize;
        let mut mutated = bytes.clone();
        if splice_sel == 1 && bytes.len() > 24 {
            // Duplicate a mid-payload chunk over another offset, then leave
            // the checksum untouched: must fail (checksum or validation).
            let src = 12 + offset % (bytes.len() - 24);
            let dst = 12 + (offset * 7 + 3) % (bytes.len() - 24);
            let b = mutated[src];
            mutated[dst] = b.wrapping_add(xor);
        } else {
            mutated[offset] ^= xor;
        }
        if mutated != bytes {
            prop_assert!(FrozenMultiStructure::load(&mutated).is_err());
        }
        prop_assert!(FrozenMultiStructure::load(&bytes).is_ok());
    }

    /// Truncation at a proptest-chosen point is always a typed error for
    /// both formats.
    #[test]
    fn truncations_never_panic(seed in 0u64..30, cut_sel in 0.0f64..1.0) {
        let single = single_snapshot(seed);
        let cut = (single.len() as f64 * cut_sel) as usize;
        prop_assert!(FrozenStructure::load(&single[..cut.min(single.len() - 1)]).is_err());
        let multi = multi_snapshot(seed);
        let cut = (multi.len() as f64 * cut_sel) as usize;
        prop_assert!(FrozenMultiStructure::load(&multi[..cut.min(multi.len() - 1)]).is_err());
    }

    /// Random single-byte mutations of v2 snapshots never panic and never
    /// load or open, across seeds and both formats.
    #[test]
    fn v2_snapshot_mutations_never_panic(
        seed in 0u64..16,
        offset_sel in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let single = single_snapshot_with(seed, SnapshotVersion::V2);
        let offset = ((single.len() - 1) as f64 * offset_sel) as usize;
        let mut mutated = single.clone();
        mutated[offset] ^= xor;
        prop_assert!(FrozenStructure::load(&mutated).is_err());
        prop_assert!(FrozenView::open_bytes(&mutated).is_err());
        prop_assert!(FrozenStructure::load(&single).is_ok());

        let multi = multi_snapshot_with(seed, SnapshotVersion::V2);
        let offset = ((multi.len() - 1) as f64 * offset_sel) as usize;
        let mut mutated = multi.clone();
        mutated[offset] ^= xor;
        prop_assert!(FrozenMultiStructure::load(&mutated).is_err());
        prop_assert!(FrozenMultiView::open_bytes(&mutated).is_err());
        prop_assert!(FrozenMultiStructure::load(&multi).is_ok());
    }
}
