//! Robustness of the binary snapshot loaders against malformed input: a
//! serving process deserialising a frozen structure from disk or the
//! network must get a typed [`SnapshotError`] for *any* corruption —
//! truncation at every prefix length, bit flips at every offset, wrong or
//! foreign magic, and adversarial length fields — and must **never panic**.
//! Both formats are covered: the single-source `"FTBO"` snapshots of
//! [`FrozenStructure`] and the multi-source `"FTBM"` snapshots of
//! [`FrozenMultiStructure`].
//!
//! Deterministic sweeps cover every truncation point and every byte
//! position (one flip per byte) on small instances; proptest then fuzzes
//! (offset, bit, mutation-kind) combinations — including multi-bit flips
//! that could in principle collide the checksum back to validity, which the
//! structural validation behind it must still reject — on larger instances.

use ftbfs_core::dual::DualFtBfsBuilder;
use ftbfs_core::multi_failure_ftmbfs_parts;
use ftbfs_graph::{generators, TieBreak, VertexId};
use ftbfs_oracle::{
    Freeze, FrozenMultiStructure, FrozenStructure, SnapshotError, SNAPSHOT_MAGIC,
    SNAPSHOT_MULTI_MAGIC,
};
use proptest::prelude::*;

fn single_snapshot(seed: u64) -> Vec<u8> {
    let g = generators::connected_gnp(24, 0.18, seed);
    let w = TieBreak::new(&g, seed);
    DualFtBfsBuilder::new(&g, &w, VertexId(0))
        .build()
        .structure
        .freeze(&g)
        .save()
}

fn multi_snapshot(seed: u64) -> Vec<u8> {
    let g = generators::tree_plus_chords(12, 5, seed);
    let w = TieBreak::new(&g, seed);
    let sources = [VertexId(0), VertexId(7)];
    let parts = multi_failure_ftmbfs_parts(&g, &w, &sources, 2);
    FrozenMultiStructure::freeze(&g, &parts).save()
}

/// Every load attempt must produce `Err`, never a panic and never a
/// structure (the input is corrupted by construction).
fn assert_single_rejects(data: &[u8], what: &str) {
    match FrozenStructure::load(data) {
        Err(_) => {}
        Ok(_) => panic!("{what}: corrupted single snapshot unexpectedly loaded"),
    }
}

fn assert_multi_rejects(data: &[u8], what: &str) {
    match FrozenMultiStructure::load(data) {
        Err(_) => {}
        Ok(_) => panic!("{what}: corrupted multi snapshot unexpectedly loaded"),
    }
}

#[test]
fn every_truncation_point_is_a_typed_error() {
    let single = single_snapshot(3);
    for cut in 0..single.len() {
        assert_single_rejects(&single[..cut], "truncation");
    }
    let multi = multi_snapshot(3);
    for cut in 0..multi.len() {
        assert_multi_rejects(&multi[..cut], "truncation");
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    // One flip per byte position (bit chosen by position) keeps the sweep
    // linear while still touching every field of both layouts.
    let single = single_snapshot(5);
    for i in 0..single.len() {
        let mut bytes = single.clone();
        bytes[i] ^= 1 << (i % 8);
        assert_single_rejects(&bytes, "bit flip");
    }
    let multi = multi_snapshot(5);
    for i in 0..multi.len() {
        let mut bytes = multi.clone();
        bytes[i] ^= 1 << (i % 8);
        assert_multi_rejects(&bytes, "bit flip");
    }
}

#[test]
fn wrong_and_foreign_magic_are_bad_magic() {
    let single = single_snapshot(7);
    let multi = multi_snapshot(7);
    // Swapping the two formats' magics must fail cleanly in both
    // directions (a multi payload under a single magic and vice versa).
    let mut cross_a = single.clone();
    cross_a[..4].copy_from_slice(&SNAPSHOT_MULTI_MAGIC);
    assert_single_rejects(&cross_a, "cross magic");
    assert_multi_rejects(&cross_a, "cross magic (checksummed payload differs)");
    let mut cross_b = multi.clone();
    cross_b[..4].copy_from_slice(&SNAPSHOT_MAGIC);
    assert_multi_rejects(&cross_b, "cross magic");
    assert_single_rejects(&cross_b, "cross magic (checksummed payload differs)");
    assert_eq!(
        FrozenStructure::load(b"").unwrap_err(),
        SnapshotError::BadMagic
    );
    assert_eq!(
        FrozenMultiStructure::load(b"\x00\x01\x02").unwrap_err(),
        SnapshotError::BadMagic
    );
    assert_eq!(
        FrozenStructure::load(b"FTBMxxxxxxxxxxxx").unwrap_err(),
        SnapshotError::BadMagic
    );
}

#[test]
fn adversarial_length_fields_do_not_overallocate_or_panic() {
    // A tiny "snapshot" that declares absurd counts: the loaders must run
    // out of bytes (typed error) without trusting the counts.
    for magic in [SNAPSHOT_MAGIC, SNAPSHOT_MULTI_MAGIC] {
        let mut payload = Vec::new();
        ftbfs_graph::bytes::put_u16(&mut payload, 1); // version
        ftbfs_graph::bytes::put_u16(&mut payload, 0); // flags
        ftbfs_graph::bytes::put_u32(&mut payload, 10); // n
        ftbfs_graph::bytes::put_u32(&mut payload, 2); // resilience
        ftbfs_graph::bytes::put_u32(&mut payload, u32::MAX); // source count
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&magic);
        bytes.extend_from_slice(&payload);
        ftbfs_graph::bytes::put_u64(&mut bytes, ftbfs_graph::bytes::fnv1a64(&payload));
        assert_single_rejects(&bytes, "length bomb");
        assert_multi_rejects(&bytes, "length bomb");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Random single-byte mutations at proptest-chosen offsets never panic
    /// and never load, across seeds (single-source format).
    #[test]
    fn single_snapshot_mutations_never_panic(
        seed in 0u64..50,
        offset_sel in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let bytes = single_snapshot(seed);
        let offset = ((bytes.len() - 1) as f64 * offset_sel) as usize;
        let mut mutated = bytes.clone();
        mutated[offset] ^= xor;
        prop_assert!(FrozenStructure::load(&mutated).is_err());
        // Mutations must also not corrupt the pristine copy's loadability.
        prop_assert!(FrozenStructure::load(&bytes).is_ok());
    }

    /// Random mutations on the multi-source format: single-byte flips plus
    /// payload-shuffling splices (checksum-surviving structural damage is
    /// caught by validation, not just the checksum).
    #[test]
    fn multi_snapshot_mutations_never_panic(
        seed in 0u64..30,
        offset_sel in 0.0f64..1.0,
        xor in 1u8..=255,
        splice_sel in 0u8..2,
    ) {
        let bytes = multi_snapshot(seed);
        let offset = ((bytes.len() - 1) as f64 * offset_sel) as usize;
        let mut mutated = bytes.clone();
        if splice_sel == 1 && bytes.len() > 24 {
            // Duplicate a mid-payload chunk over another offset, then leave
            // the checksum untouched: must fail (checksum or validation).
            let src = 12 + offset % (bytes.len() - 24);
            let dst = 12 + (offset * 7 + 3) % (bytes.len() - 24);
            let b = mutated[src];
            mutated[dst] = b.wrapping_add(xor);
        } else {
            mutated[offset] ^= xor;
        }
        if mutated != bytes {
            prop_assert!(FrozenMultiStructure::load(&mutated).is_err());
        }
        prop_assert!(FrozenMultiStructure::load(&bytes).is_ok());
    }

    /// Truncation at a proptest-chosen point is always a typed error for
    /// both formats.
    #[test]
    fn truncations_never_panic(seed in 0u64..30, cut_sel in 0.0f64..1.0) {
        let single = single_snapshot(seed);
        let cut = (single.len() as f64 * cut_sel) as usize;
        prop_assert!(FrozenStructure::load(&single[..cut.min(single.len() - 1)]).is_err());
        let multi = multi_snapshot(seed);
        let cut = (multi.len() as f64 * cut_sel) as usize;
        prop_assert!(FrozenMultiStructure::load(&multi[..cut.min(multi.len() - 1)]).is_err());
    }
}
