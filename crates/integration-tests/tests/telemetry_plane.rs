//! Workspace-level tests of the telemetry plane: histogram quantile
//! guarantees under random workloads (proptest), and the export contract
//! — a live instrumented harness run whose scrape round-trips losslessly
//! through the JSON exporter and renders to coherent Prometheus text.

use ftbfs_core::dual::DualFtBfsBuilder;
use ftbfs_graph::{generators, FaultSpec, TieBreak, VertexId};
use ftbfs_oracle::{Freeze, Query};
use ftbfs_serve::ThroughputHarness;
use ftbfs_telemetry::hist::{bucket_upper_bound, Histogram};
use ftbfs_telemetry::{names, MetricsRegistry, TelemetrySnapshot};
use proptest::prelude::*;

/// The nearest-rank `q`-quantile of `values` (sorted ascending).
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// The log-linear histogram's quantile bounds always bracket the true
    /// nearest-rank quantile of what was recorded, and the bracket is the
    /// one bucket wide the format promises (≤ 25% relative width above
    /// the linear range).
    #[test]
    fn histogram_quantile_bounds_bracket_the_true_quantile(
        values in prop::collection::vec(0u64..1_000_000_000_000, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 1..6),
    ) {
        let h = Histogram::new(1);
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let data = h.merged();
        prop_assert_eq!(data.count, values.len() as u64);
        for &q in &qs {
            let truth = true_quantile(&sorted, q);
            let (lower, upper) = data.quantile_bounds(q).expect("non-empty");
            prop_assert!(
                lower <= truth && truth <= upper,
                "q={} truth={} not in [{}, {}]", q, truth, lower, upper
            );
            // The bracket is one bucket: its upper bound is the bucket
            // boundary right above its lower bound.
            prop_assert!(upper >= lower);
            prop_assert!(
                upper.saturating_sub(lower) <= lower / 4 + 1,
                "bucket [{}, {}] wider than the 25% log-linear promise", lower, upper
            );
        }
    }

    /// Recorded values land in the bucket whose bounds contain them: the
    /// min/max the histogram reports are exact, and every bucket bound is
    /// monotone in the recorded value.
    #[test]
    fn histogram_min_max_are_exact_and_bounds_monotone(
        values in prop::collection::vec(0u64..u64::MAX / 2, 1..100),
    ) {
        let h = Histogram::new(1);
        for &v in &values {
            h.record(v);
        }
        let data = h.merged();
        prop_assert_eq!(data.min, values.iter().copied().min());
        prop_assert_eq!(data.max, values.iter().copied().max());
        for &v in &values {
            let idx = ftbfs_telemetry::hist::bucket_index(v);
            prop_assert!(ftbfs_telemetry::hist::bucket_lower_bound(idx) <= v);
            prop_assert!(v <= bucket_upper_bound(idx));
        }
    }
}

#[test]
fn live_harness_scrape_round_trips_json_and_renders_prometheus() {
    // A real instrumented run: the harness registers the engine counters
    // and its batch histogram in the registry, then the scrape must
    // survive JSON round-trip exactly and render to Prometheus text whose
    // series agree with the JSON's.
    let g = generators::connected_gnp(60, 0.12, 11);
    let w = TieBreak::new(&g, 11);
    let h = DualFtBfsBuilder::new(&g, &w, VertexId(0)).build().structure;
    let frozen = h.freeze(&g);
    let edges: Vec<_> = h.edges().collect();
    let queries: Vec<Query> = (0..600)
        .map(|i| {
            let spec = match i % 3 {
                0 => FaultSpec::None,
                1 => FaultSpec::One(edges[i % edges.len()]),
                _ => FaultSpec::from((edges[i % edges.len()], edges[(i * 7) % edges.len()])),
            };
            Query::new(VertexId((i % g.vertex_count()) as u32), spec)
        })
        .collect();

    let registry = MetricsRegistry::new();
    let harness = ThroughputHarness::new(2);
    let report = harness.run_instrumented(&frozen, &queries, &registry);
    assert_eq!(report.distances.len(), queries.len());

    let snapshot = registry.scrape();
    let routed: u64 = snapshot
        .counters
        .iter()
        .filter(|c| {
            c.name == names::ENGINE_TREE_HITS
                || c.name == names::ENGINE_CACHE_HITS
                || c.name == names::ENGINE_SEARCHES
        })
        .map(|c| c.value)
        .sum();
    assert_eq!(routed as usize, queries.len());

    // JSON round-trip is lossless (satisfying the exporter contract):
    // parse(to_json) == snapshot, and re-serialising is a fixed point.
    let json = snapshot.to_json();
    let parsed = TelemetrySnapshot::from_json(&json).expect("own JSON parses");
    assert_eq!(parsed, snapshot);
    assert_eq!(parsed.to_json(), json);

    // The Prometheus rendering of the round-tripped snapshot is
    // byte-identical to the original's, and carries the expected series.
    let prom = snapshot.to_prometheus();
    assert_eq!(parsed.to_prometheus(), prom);
    for name in [
        names::ENGINE_TREE_HITS,
        names::ENGINE_CACHE_HITS,
        names::ENGINE_SEARCHES,
        names::HARNESS_BATCH_NS,
    ] {
        assert!(prom.contains(&format!("# TYPE {name}")), "missing {name}");
    }
    // Histogram exposition: cumulative buckets end at +Inf with the count.
    let batch = snapshot
        .histograms
        .iter()
        .find(|h| h.name == names::HARNESS_BATCH_NS)
        .expect("harness batch histogram scraped");
    assert_eq!(batch.count, 1, "one driven batch");
    assert!(prom.contains(&format!(
        "{}_bucket{{le=\"+Inf\"}} {}",
        names::HARNESS_BATCH_NS,
        batch.count
    )));
    assert!(prom.contains(&format!(
        "{}_count {}",
        names::HARNESS_BATCH_NS,
        batch.count
    )));
}
