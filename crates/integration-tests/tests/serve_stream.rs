//! End-to-end tests of the sharded serving front-end (`ftbfs-serve`): the
//! stream contract under concurrent load, epoch swaps that drop nothing,
//! and the shard router's exactly-once / input-order guarantees.
//!
//! The load-bearing correctness argument: both epochs used here are
//! dual-failure-resilient structures over the *same* graph, so for every
//! request with `|F| ≤ 2` the exact answer is the same whichever epoch
//! serves it — `dist(s, v, H ∖ F) = dist(s, v, G ∖ F)` by the paper's
//! resilience guarantee.  That lets a client racing an epoch swap verify
//! every response against ground truth without knowing which side of the
//! swap answered; the epoch fingerprint on each response then only has to
//! be *one of the two published fingerprints*, and post-publish submits
//! must carry the new one.

use ftbfs_core::dual::DualFtBfsBuilder;
use ftbfs_graph::{bfs, generators, EdgeId, FaultSpec, Graph, GraphView, TieBreak, VertexId};
use ftbfs_oracle::{Freeze, FrozenStructure, QueryEngine, QueryError, SnapshotVersion};
use ftbfs_serve::{
    EpochSnapshot, ServeConfig, ServeError, ServeRequest, ServeResponse, StreamServer,
};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Ground truth `dist(s, ·, G ∖ F)` for all vertices.
fn ground_truth(g: &Graph, s: VertexId, spec: &FaultSpec) -> Vec<Option<u32>> {
    let view = GraphView::new(g).without_faults(&spec.to_fault_set());
    let res = bfs(&view, s);
    g.vertices().map(|v| res.distance(v)).collect()
}

fn frozen_for(g: &Graph, seed: u64) -> FrozenStructure {
    let w = TieBreak::new(g, seed);
    DualFtBfsBuilder::new(g, &w, VertexId(0))
        .build()
        .structure
        .freeze(g)
}

fn epoch_snapshot(frozen: &FrozenStructure) -> EpochSnapshot {
    EpochSnapshot::from_bytes(frozen.save_with(SnapshotVersion::V2))
        .expect("freshly saved v2 snapshot validates")
}

/// A deterministic mixed workload of ≤ 2-fault requests over `g`'s edges.
fn mixed_requests(g: &Graph, count: usize) -> Vec<ServeRequest> {
    let edges: Vec<EdgeId> = g.edges().collect();
    let m = edges.len();
    (0..count)
        .map(|i| {
            let target = VertexId((i * 7 % g.vertex_count()) as u32);
            match i % 4 {
                0 => ServeRequest::distance(target, FaultSpec::None),
                1 => ServeRequest::distance(target, edges[i % m]),
                _ => ServeRequest::distance(target, (edges[i % m], edges[(i * 5 + 3) % m])),
            }
        })
        .collect()
}

/// The tentpole acceptance test: concurrent clients stream mixed requests
/// while a publisher swaps epochs back and forth mid-run.  Every request
/// is answered exactly once, in submission order, correctly per ground
/// truth, from one of the two published epochs — and requests submitted
/// after the final publish are all served by the final epoch.
#[test]
fn epoch_swap_under_concurrent_load_drops_nothing() {
    let g = generators::connected_gnp(40, 0.15, 21);
    let frozen_a = frozen_for(&g, 1);
    let frozen_b = frozen_for(&g, 8);
    let (fp_a, fp_b) = (frozen_a.fingerprint(), frozen_b.fingerprint());
    assert_ne!(fp_a, fp_b, "the two epochs must be distinguishable");
    let (snap_a, snap_b) = (epoch_snapshot(&frozen_a), epoch_snapshot(&frozen_b));

    // Ground truth per fault spec is epoch-independent (see module docs);
    // precompute it for every distinct spec in the workload.
    let requests = mixed_requests(&g, 3_000);
    let expected_for = |spec: &FaultSpec| ground_truth(&g, VertexId(0), spec);

    let server = StreamServer::launch(snap_a.clone(), ServeConfig::new().workers(3));
    let publisher = server.publisher();
    let swaps = 12;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..swaps {
                std::thread::sleep(Duration::from_millis(1));
                let next = if i % 2 == 0 { &snap_b } else { &snap_a };
                publisher.publish(next.clone()).expect("publish succeeds");
            }
        });
        for _client in 0..2 {
            scope.spawn(|| {
                let mut stream = server.open_stream();
                for r in &requests {
                    stream.submit(r.clone()).expect("server is live");
                }
                let responses = stream.drain().expect("every response arrives");
                assert_eq!(responses.len(), requests.len(), "a request was dropped");
                for (i, (req, resp)) in requests.iter().zip(&responses).enumerate() {
                    assert_eq!(resp.seq, i as u64, "submission order violated");
                    assert!(
                        resp.epoch == fp_a || resp.epoch == fp_b,
                        "answer from unpublished epoch {:#x}",
                        resp.epoch
                    );
                    let target = match req.target {
                        ftbfs_serve::ServeTarget::One(t) => t,
                        _ => unreachable!("workload is single-target"),
                    };
                    let expected = expected_for(&req.faults)[target.index()];
                    assert_eq!(
                        resp.distance(),
                        Some(expected),
                        "request {i} wrong under swap (spec {:?})",
                        req.faults
                    );
                }
            });
        }
    });

    // Steady state after the swap storm: whatever epoch is current now
    // answers everything submitted from here on.
    let settled = server.fingerprint();
    assert!(settled == fp_a || settled == fp_b);
    let mut stream = server.open_stream();
    for r in requests.iter().take(200) {
        stream.submit(r.clone()).expect("server is live");
    }
    for resp in stream.drain().expect("responses arrive") {
        assert_eq!(
            resp.epoch, settled,
            "post-publish submit served by old epoch"
        );
    }
    drop(stream);
    server.shutdown();
}

/// Requests submitted after `publish` returns are never answered by the
/// old epoch — checked tightly: submit-publish-submit interleavings on a
/// single thread, many times.
#[test]
fn publish_is_a_barrier_for_subsequent_submits() {
    let g = generators::connected_gnp(24, 0.2, 5);
    let frozen_a = frozen_for(&g, 1);
    let frozen_b = frozen_for(&g, 9);
    let (snap_a, snap_b) = (epoch_snapshot(&frozen_a), epoch_snapshot(&frozen_b));
    let fps = [frozen_a.fingerprint(), frozen_b.fingerprint()];
    assert_ne!(fps[0], fps[1]);

    let server = StreamServer::launch(snap_a.clone(), ServeConfig::new().workers(2));
    let mut stream = server.open_stream();
    for round in 0..50 {
        let next_fp = fps[(round + 1) % 2];
        let next = if (round + 1) % 2 == 1 {
            snap_b.clone()
        } else {
            snap_a.clone()
        };
        server.publish(next).expect("publish succeeds");
        stream
            .submit(ServeRequest::distance(VertexId(3), FaultSpec::None))
            .expect("server is live");
        let resp = stream.recv().expect("response arrives");
        assert_eq!(
            resp.epoch, next_fp,
            "round {round}: submit after publish saw the old epoch"
        );
    }
    drop(stream);
    server.shutdown();
}

/// In-stream error semantics survive routing: bad requests are answered
/// (not dropped) with typed errors in their submission slot, and
/// `ServeError` converts/compares as the one error surface.
#[test]
fn stream_reports_typed_errors_in_order() {
    let g = generators::cycle(10);
    let frozen = frozen_for(&g, 2);
    let server = StreamServer::launch(epoch_snapshot(&frozen), ServeConfig::new().workers(2));
    let mut stream = server.open_stream();

    stream
        .submit(ServeRequest::distance(VertexId(5), FaultSpec::None))
        .unwrap();
    stream
        .submit(ServeRequest::distance(VertexId(10), FaultSpec::None))
        .unwrap();
    stream
        .submit(ServeRequest::distance_from(
            VertexId(4),
            VertexId(5),
            FaultSpec::None,
        ))
        .unwrap();
    stream
        .submit(
            ServeRequest::distance(VertexId(5), FaultSpec::None)
                .with_deadline(Instant::now() - Duration::from_secs(1)),
        )
        .unwrap();

    let responses = stream.drain().unwrap();
    assert_eq!(responses[0].distance(), Some(Some(5)));
    assert_eq!(
        responses[1].outcome,
        Err(ServeError::Query(QueryError::VertexOutOfRange {
            vertex: VertexId(10),
            bound: 10
        }))
    );
    // A single-source structure serves any source; VertexId(4) is valid.
    assert!(responses[2].outcome.is_ok());
    assert_eq!(responses[3].outcome, Err(ServeError::DeadlineExceeded));

    // The From<QueryError> boundary conversion is what the worker used.
    let q = QueryError::VertexOutOfRange {
        vertex: VertexId(10),
        bound: 10,
    };
    assert_eq!(ServeError::from(q.clone()), ServeError::Query(q));

    drop(stream);
    server.shutdown();
}

/// The batch adapter and a plain engine loop agree — the
/// behaviour-preservation contract that let the deprecated
/// `ftbfs_oracle::ThroughputHarness` be removed.
#[test]
fn harness_adapter_matches_direct_engine() {
    let g = generators::connected_gnp(30, 0.16, 3);
    let frozen = frozen_for(&g, 3);
    let edges: Vec<EdgeId> = g.edges().collect();
    let queries: Vec<ftbfs_oracle::Query> = (0..300)
        .map(|i| {
            let t = VertexId((i % g.vertex_count()) as u32);
            match i % 3 {
                0 => ftbfs_oracle::Query::fault_free(t),
                1 => ftbfs_oracle::Query::new(t, edges[i % edges.len()]),
                _ => ftbfs_oracle::Query::new(
                    t,
                    (edges[i % edges.len()], edges[(i * 11 + 2) % edges.len()]),
                ),
            }
        })
        .collect();
    let report = ftbfs_serve::ThroughputHarness::new(3).run(&frozen, &queries);
    assert_eq!(report.distances.len(), queries.len());
    let mut engine = QueryEngine::new();
    for (q, d) in queries.iter().zip(&report.distances) {
        assert_eq!(
            engine
                .try_distance(&frozen, q.target, &q.faults)
                .unwrap()
                .into_value(),
            *d
        );
    }
}

/// Deterministic fault-injection coverage (`--features chaos`): the exact
/// shape of degraded service, pinned down without randomness.  The
/// randomised schedule sweep lives in `serve_chaos.rs`.
#[cfg(feature = "chaos")]
mod chaos_gated {
    use super::*;
    use ftbfs_serve::{ChaosConfig, EpochCell};
    use std::sync::Arc;

    /// A worker that panics on its first three pickups answers exactly
    /// those three requests with `WorkerRestarted` carrying the
    /// per-shard generations 1, 2, 3 — and serves the rest correctly
    /// from the same (thrice-respawned) shard.
    #[test]
    fn restart_generations_count_per_shard_and_in_flight_is_answered() {
        let g = generators::connected_gnp(20, 0.2, 11);
        let frozen = frozen_for(&g, 11);
        // Rate 1_000_000 ⇒ every pickup fires until the cap of 3.
        let schedule = ChaosConfig::new(99).with_worker_panics(1_000_000, 3);
        let server = StreamServer::launch(
            epoch_snapshot(&frozen),
            ServeConfig::new().workers(1).chaos(schedule),
        );
        let mut stream = server.open_stream();
        for r in mixed_requests(&g, 6) {
            stream.submit(r).expect("server is live");
        }
        let responses = stream.drain().expect("every response arrives");
        assert_eq!(responses.len(), 6, "a request was dropped");
        for (i, resp) in responses.iter().take(3).enumerate() {
            assert_eq!(
                resp.outcome,
                Err(ServeError::WorkerRestarted {
                    generation: i as u64 + 1
                }),
                "panicked pickup {i} must carry its restart generation"
            );
        }
        let mut engine = QueryEngine::new();
        for (r, resp) in mixed_requests(&g, 6).iter().zip(&responses).skip(3) {
            let t = match r.target {
                ftbfs_serve::ServeTarget::One(t) => t,
                _ => unreachable!(),
            };
            let expected = engine
                .try_distance(&frozen, t, &r.faults)
                .unwrap()
                .into_value();
            assert_eq!(resp.distance(), Some(expected), "post-restart answer wrong");
        }
        assert_eq!(server.health().worker_restarts, 3);
        assert_eq!(server.chaos_stats().panics, 3);
        drop(stream);
        server.shutdown();
    }

    /// Lock poisoning is survivable end-to-end: a cell whose slot and
    /// publish locks were all poisoned by panicking holders still loads
    /// views and accepts publishes (the `into_inner` recovery path),
    /// so a poisoned cell can never wedge the serving plane.
    #[test]
    fn poisoned_epoch_cell_still_loads_and_publishes() {
        let g = generators::connected_gnp(20, 0.2, 13);
        let frozen_a = frozen_for(&g, 13);
        let frozen_b = frozen_for(&g, 17);
        let cell = Arc::new(EpochCell::new(Arc::new(epoch_snapshot(&frozen_a))));
        cell.poison_locks();

        let (generation, snap) = cell.load();
        assert_eq!(snap.fingerprint(), frozen_a.fingerprint());
        let published = cell.publish(Arc::new(epoch_snapshot(&frozen_b)));
        assert!(published > generation, "publish must advance the epoch");
        let (_, snap) = cell.load();
        assert_eq!(
            snap.fingerprint(),
            frozen_b.fingerprint(),
            "post-poison publish must be visible"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// Router property: for any worker count, client count and workload
    /// size, every request is answered exactly once, responses arrive in
    /// submission order, and every answer matches a direct engine run.
    #[test]
    fn router_answers_exactly_once_in_order(
        n in 12usize..30,
        seed in 0u64..200,
        workers in 1usize..5,
        count in 1usize..120,
        clients in 1usize..3,
    ) {
        let g = generators::connected_gnp(n, 0.18, seed);
        let frozen = frozen_for(&g, seed);
        let requests = mixed_requests(&g, count);
        let mut engine = QueryEngine::new();
        let expected: Vec<Option<u32>> = requests
            .iter()
            .map(|r| {
                let t = match r.target {
                    ftbfs_serve::ServeTarget::One(t) => t,
                    _ => unreachable!(),
                };
                engine.try_distance(&frozen, t, &r.faults).unwrap().into_value()
            })
            .collect();

        let server = StreamServer::launch(
            epoch_snapshot(&frozen),
            ServeConfig::new().workers(workers),
        );
        let all: Vec<Vec<ServeResponse>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    scope.spawn(|| {
                        let mut stream = server.open_stream();
                        for r in &requests {
                            stream.submit(r.clone()).expect("server is live");
                        }
                        stream.drain().expect("all responses arrive")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client")).collect()
        });
        for responses in &all {
            prop_assert_eq!(responses.len(), requests.len());
            for (i, resp) in responses.iter().enumerate() {
                prop_assert_eq!(resp.seq, i as u64);
                prop_assert_eq!(resp.distance(), Some(expected[i]), "request {}", i);
            }
        }
        server.shutdown();
    }
}
