//! Golden-equivalence tests for the reusable search engine.
//!
//! The zero-allocation workspace, the epoch-stamped overlay restrictions,
//! the unweighted fast path and the parallel per-vertex construction must
//! all leave the produced dual-failure FT-BFS structure *bit-identical* to
//! the pre-refactor implementation: same `W`-canonical paths, same selected
//! last edges.  The expected fingerprints below were captured by running the
//! original (allocating, serial) implementation on the seeded instances;
//! any drift in path selection shows up as a fingerprint mismatch.

use ftbfs_core::dual::{DualFtBfs, DualFtBfsBuilder};
use ftbfs_graph::{generators, Graph, TieBreak, VertexId};

/// FNV-1a over the sorted edge-id list — stable across platforms.
fn fingerprint(result: &DualFtBfs) -> (usize, u64) {
    let mut ids: Vec<u32> = result.structure.edges().map(|e| e.0).collect();
    ids.sort_unstable();
    let mut h: u64 = 0xcbf29ce484222325;
    for &e in &ids {
        for b in e.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    (ids.len(), h)
}

/// The seeded instances with the edge counts and fingerprints produced by
/// the pre-refactor serial implementation.
fn golden_cases() -> Vec<(Graph, u64, usize, u64)> {
    vec![
        (
            generators::connected_gnp(40, 0.12, 7),
            11,
            99,
            0x11065eaddc7e5d45,
        ),
        (generators::grid(6, 7), 13, 71, 0x7fdbdd2eb335a412),
        (
            generators::tree_plus_chords(36, 30, 3),
            17,
            63,
            0x3a65f64dca99db37,
        ),
        (
            generators::connected_gnp(50, 0.2, 11),
            23,
            134,
            0x70c070d98cf62b7f,
        ),
    ]
}

#[test]
fn structure_matches_pre_refactor_golden_fingerprints() {
    for (i, (g, wseed, expect_edges, expect_fnv)) in golden_cases().into_iter().enumerate() {
        let w = TieBreak::new(&g, wseed);
        let r = DualFtBfsBuilder::new(&g, &w, VertexId(0)).build();
        let (edges, fnv) = fingerprint(&r);
        assert_eq!(edges, expect_edges, "edge count drifted on golden case {i}");
        assert_eq!(
            fnv, expect_fnv,
            "edge set drifted on golden case {i}: selection is no longer \
             equivalent to the pre-refactor implementation"
        );
    }
}

#[test]
fn parallel_construction_is_bit_identical_to_serial() {
    for (g, wseed, _, _) in golden_cases() {
        let w = TieBreak::new(&g, wseed);
        let serial = DualFtBfsBuilder::new(&g, &w, VertexId(0))
            .record_paths(true)
            .build();
        for threads in [2usize, 3, 4, 16] {
            let parallel = DualFtBfsBuilder::new(&g, &w, VertexId(0))
                .record_paths(true)
                .threads(threads)
                .build();
            assert_eq!(
                fingerprint(&serial),
                fingerprint(&parallel),
                "structure differs with {threads} threads"
            );
            // The per-vertex records must merge back in vertex-id order with
            // identical selected paths.
            assert_eq!(serial.records.len(), parallel.records.len());
            for (a, b) in serial.records.iter().zip(parallel.records.iter()) {
                assert_eq!(a.vertex, b.vertex);
                assert_eq!(a.pi, b.pi);
                assert_eq!(a.detours.len(), b.detours.len());
                for (da, db) in a.detours.iter().zip(b.detours.iter()) {
                    assert_eq!(da.protected_edge, db.protected_edge);
                    assert_eq!(da.decomposition.reassemble(), db.decomposition.reassemble());
                }
                assert_eq!(a.new_ending.len(), b.new_ending.len());
                for (na, nb) in a.new_ending.iter().zip(b.new_ending.iter()) {
                    assert_eq!(na.path, nb.path);
                    assert_eq!(na.pi_divergence, nb.pi_divergence);
                    assert_eq!(na.detour_divergence, nb.detour_divergence);
                }
            }
        }
    }
}

#[test]
fn parallel_ftmbfs_parts_are_bit_identical_to_serial() {
    use ftbfs_core::{multi_failure_ftmbfs_parts, multi_failure_ftmbfs_parts_threads};
    // The construction-side FT-MBFS parallelisation mirrors
    // DualFtBfsBuilder::threads: contiguous source chunks, spawn-order
    // merge, so the parts — and hence the frozen slabs and the union —
    // must be bit-identical for every thread count.
    let g = generators::tree_plus_chords(20, 9, 5);
    let w = TieBreak::new(&g, 5);
    let sources: Vec<VertexId> = vec![VertexId(0), VertexId(6), VertexId(13), VertexId(19)];
    let serial = multi_failure_ftmbfs_parts(&g, &w, &sources, 2);
    for threads in [2usize, 3, 4, 16] {
        let parallel = multi_failure_ftmbfs_parts_threads(&g, &w, &sources, 2, threads);
        assert_eq!(
            serial, parallel,
            "FT-MBFS parts differ with {threads} threads"
        );
        // And the frozen serving form is identical too (fingerprint covers
        // the union edge list and every slab's index list).
        let a = ftbfs_oracle::FrozenMultiStructure::freeze(&g, &serial);
        let b = ftbfs_oracle::FrozenMultiStructure::freeze(&g, &parallel);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
    }
}

#[test]
fn parallel_structures_still_verify_exhaustively() {
    use ftbfs_graph::{bfs, FaultSet, GraphView};
    let g = generators::connected_gnp(14, 0.2, 19);
    let w = TieBreak::new(&g, 19);
    let r = DualFtBfsBuilder::new(&g, &w, VertexId(0))
        .threads(4)
        .build();
    let edges: Vec<_> = g.edges().collect();
    let mut fault_sets = vec![FaultSet::empty()];
    for &e in &edges {
        fault_sets.push(FaultSet::single(e));
    }
    for i in 0..edges.len() {
        for j in (i + 1)..edges.len() {
            fault_sets.push(FaultSet::pair(edges[i], edges[j]));
        }
    }
    for fs in fault_sets {
        let gview = GraphView::new(&g).without_faults(&fs);
        let hview = r.structure.as_view(&g).without_faults(&fs);
        let gd = bfs(&gview, VertexId(0));
        let hd = bfs(&hview, VertexId(0));
        for v in g.vertices() {
            assert_eq!(
                gd.distance(v),
                hd.distance(v),
                "mismatch at v={v:?} under {fs:?}"
            );
        }
    }
}
