//! Equivalence suite for the query-serving subsystem (`ftbfs-oracle`),
//! exercised through the [`DistanceOracle`] trait for **both** backends:
//! the single-source `FrozenStructure` and the multi-source
//! `FrozenMultiStructure`.  Every query path of the [`QueryEngine`] —
//! fault-free fast path, single-fault, dual-fault, cached repeats, the
//! `S × V` distance matrix, batched, and the sharded multi-threaded
//! harness — must be bit-identical to ground-truth BFS on `G ∖ F`, and
//! snapshots must round-trip to identical answers.
//!
//! Comparing against `G ∖ F` (not `H ∖ F`) is deliberately the stronger
//! check: for `|F| ≤ resilience` it verifies both the engine *and* the
//! FT-BFS property of the structure it serves.  Beyond the resilience the
//! suite checks the *guarantee contract* instead: `try_distance` flags the
//! answer [`Guarantee::BestEffort`] and the value equals ground-truth BFS
//! on `H ∖ F` (exact inside the structure, an upper bound on `G ∖ F`).
//!
//! Approximate backends (`FrozenApproxStructure` / `FrozenApproxView`) get
//! a *stretch* variant of the suite instead of equality: every faulted
//! in-resilience answer must be flagged [`Guarantee::Approx`], agree with
//! `G ∖ F` on reachability, and satisfy `true_d ≤ d_H ≤ ⌈α·true_d⌉ + β` —
//! while exact backends must **never** report `Approx` (property-tested).

use ftbfs_core::dual::DualFtBfsBuilder;
use ftbfs_core::{approx_ftbfs, multi_failure_ftmbfs_parts, ApproxParams};
use ftbfs_graph::{bfs, generators, EdgeId, FaultSpec, Graph, GraphView, TieBreak, VertexId};
use ftbfs_oracle::{
    DistanceOracle, Freeze, FrozenApproxStructure, FrozenApproxView, FrozenMultiStructure,
    FrozenMultiView, FrozenStructure, FrozenView, Guarantee, Query, QueryEngine, QueryError,
    SnapshotSource, SnapshotVersion,
};
use ftbfs_serve::ThroughputHarness;
use proptest::prelude::*;

/// Ground truth `dist(s, ·, G ∖ F)` for all vertices.
fn ground_truth(g: &Graph, s: VertexId, spec: &FaultSpec) -> Vec<Option<u32>> {
    let view = GraphView::new(g).without_faults(&spec.to_fault_set());
    let res = bfs(&view, s);
    g.vertices().map(|v| res.distance(v)).collect()
}

/// A deterministic spread of fault specs of size 0, 1 and 2 over `g`'s
/// edges (which may or may not belong to the structure).
fn fault_specs(g: &Graph, stride: usize) -> Vec<FaultSpec> {
    let edges: Vec<EdgeId> = g.edges().collect();
    let m = edges.len();
    let mut specs = vec![FaultSpec::None];
    for i in (0..m).step_by(stride.max(1)) {
        specs.push(FaultSpec::One(edges[i]));
        specs.push(FaultSpec::from((edges[i], edges[(i * 5 + 3) % m])));
    }
    specs
}

fn frozen_for(g: &Graph, seed: u64) -> FrozenStructure {
    let w = TieBreak::new(g, seed);
    DualFtBfsBuilder::new(g, &w, VertexId(0))
        .build()
        .structure
        .freeze(g)
}

fn multi_frozen_for(g: &Graph, sources: &[VertexId], seed: u64) -> FrozenMultiStructure {
    let w = TieBreak::new(g, seed);
    let parts = multi_failure_ftmbfs_parts(g, &w, sources, 2);
    FrozenMultiStructure::freeze(g, &parts)
}

/// The core assertion, generic over the serving backend: every engine path
/// agrees with ground truth on every vertex from every *served* source
/// under every sampled fault spec, and every answer within the resilience
/// is flagged exact.
fn assert_oracle_matches_ground_truth<O: DistanceOracle>(g: &Graph, oracle: &O, stride: usize) {
    let mut engine = QueryEngine::new();
    let n = g.vertex_count();
    for spec in fault_specs(g, stride) {
        let per_source: Vec<Vec<Option<u32>>> = oracle
            .sources()
            .iter()
            .map(|&s| ground_truth(g, s, &spec))
            .collect();
        for (src_idx, &source) in oracle.sources().iter().enumerate() {
            let expected = &per_source[src_idx];
            // Single queries (first pass populates tree/cache, second pass
            // re-reads — the cached repeat must stay bit-identical).
            for pass in 0..2 {
                for v in g.vertices() {
                    let answer = engine
                        .try_distance_from(oracle, source, v, &spec)
                        .expect("in-range query on a served source");
                    assert!(answer.is_exact(), "|F| ≤ 2 answers must be exact");
                    assert_eq!(
                        answer.into_value(),
                        expected[v.index()],
                        "pass {pass}, source {source:?}, target {v:?}, spec {spec:?}"
                    );
                }
            }
            // The bulk read agrees slot for slot.
            assert_eq!(
                engine
                    .try_all_distances_from(oracle, source, &spec)
                    .unwrap()
                    .into_value(),
                *expected
            );
            // Paths exist exactly where distances do, with matching lengths,
            // valid edges, and no failed edge.
            for v in g.vertices() {
                match engine
                    .try_shortest_path_from(oracle, source, v, &spec)
                    .unwrap()
                    .into_value()
                {
                    Some(p) => {
                        assert_eq!(Some(p.len() as u32), expected[v.index()]);
                        assert!(p.is_valid_in(g));
                        assert!(!spec.to_fault_set().intersects_path(g, &p));
                    }
                    None => assert_eq!(expected[v.index()], None, "missing path to {v:?}"),
                }
            }
        }
        // The S × V matrix is the per-source rows, in order.
        let matrix = engine
            .try_distance_matrix(oracle, &spec)
            .unwrap()
            .into_value();
        assert_eq!(matrix.sources(), oracle.sources());
        for (row, expected) in per_source.iter().enumerate() {
            assert_eq!(matrix.row(row), &expected[..], "matrix row {row}");
        }
        assert_eq!(matrix.vertex_count(), n);
    }
}

/// The stretch variant of the core assertion, for approximate backends:
/// under every sampled fault spec, every answer carries the right
/// guarantee tier for its fault count, agrees with ground truth on
/// reachability, and — where reachable — satisfies the declared `(α, β)`
/// contract `true_d ≤ d_H ≤ ⌈α·true_d⌉ + β`.  Fault-free answers must
/// still be exactly the BFS distance (the primary tree is embedded
/// whole).
fn assert_approx_oracle_honours_contract<O: DistanceOracle>(
    g: &Graph,
    oracle: &O,
    params: ApproxParams,
    stride: usize,
) {
    let mut engine = QueryEngine::new();
    let source = oracle.sources()[0];
    let declared = Guarantee::Approx {
        mult_num: params.mult_num,
        mult_den: params.mult_den,
        add: params.add,
    };
    for spec in fault_specs(g, stride) {
        let expected = ground_truth(g, source, &spec);
        for v in g.vertices() {
            let answer = engine
                .try_distance_from(oracle, source, v, &spec)
                .expect("in-range query on a served source");
            let guarantee = answer.guarantee();
            match spec.len() {
                0 => {
                    assert_eq!(guarantee, Guarantee::Exact, "fault-free answers are exact");
                    assert_eq!(answer.into_value(), expected[v.index()], "target {v:?}");
                }
                1 | 2 => {
                    assert_eq!(
                        guarantee, declared,
                        "in-resilience faulted answers declare the stretch contract \
                         (target {v:?}, spec {spec:?})"
                    );
                    match (answer.into_value(), expected[v.index()]) {
                        (None, None) => {}
                        (Some(d), Some(true_d)) => {
                            let bound = guarantee
                                .stretch_bound(true_d)
                                .expect("Approx is a bounded guarantee");
                            assert!(
                                u64::from(d) >= u64::from(true_d),
                                "answers never undershoot (H ⊆ G): {d} < {true_d} \
                                 at {v:?} under {spec:?}"
                            );
                            assert!(
                                u64::from(d) <= bound,
                                "stretch bound violated: d_H = {d} > ⌈α·{true_d}⌉ + β = {bound} \
                                 at {v:?} under {spec:?}"
                            );
                        }
                        (got, want) => panic!(
                            "reachability must match G ∖ F: got {got:?}, want {want:?} \
                             at {v:?} under {spec:?}"
                        ),
                    }
                }
                _ => unreachable!("fault_specs samples |F| ≤ 2"),
            }
        }
    }
    // Beyond the resilience the contract degrades to BestEffort, exactly
    // like the exact backends.
    let edges: Vec<EdgeId> = g.edges().collect();
    let beyond = FaultSpec::from([edges[0], edges[edges.len() / 2], edges[edges.len() - 1]]);
    let answer = engine
        .try_distance_from(oracle, source, VertexId(0), &beyond)
        .unwrap();
    assert_eq!(answer.guarantee(), Guarantee::BestEffort);
}

fn approx_frozen_for(g: &Graph, params: ApproxParams, seed: u64) -> FrozenApproxStructure {
    let w = TieBreak::new(g, seed);
    FrozenApproxStructure::freeze(g, &approx_ftbfs(g, &w, VertexId(0), params))
}

#[test]
fn approx_backend_honours_the_stretch_contract() {
    for seed in [2015u64, 77, 4169] {
        let g = generators::connected_gnp(34, 0.14, seed);
        let frozen = approx_frozen_for(&g, ApproxParams::DEFAULT, seed);
        assert_approx_oracle_honours_contract(&g, &frozen, ApproxParams::DEFAULT, 7);
    }
    // Structured families, including θ = 0 (no reinforcement).
    let cycle = generators::cycle(24);
    let params = ApproxParams::DEFAULT.with_theta(0);
    let frozen = approx_frozen_for(&cycle, params, 1);
    assert_approx_oracle_honours_contract(&cycle, &frozen, params, 3);
    let grid = generators::grid(5, 6);
    let frozen = approx_frozen_for(&grid, ApproxParams::DEFAULT, 2);
    assert_approx_oracle_honours_contract(&grid, &frozen, ApproxParams::DEFAULT, 5);
}

#[test]
fn approx_view_honours_the_stretch_contract_from_mapped_bytes() {
    // The FTBA v2 acceptance bar mirrors the exact backends': a view
    // opened from the bytes passes the same contract suite the rebuilt
    // structure does, and the two answer identically.
    let g = generators::connected_gnp(30, 0.16, 21);
    let frozen = approx_frozen_for(&g, ApproxParams::DEFAULT, 21);
    let bytes = frozen.save_with(SnapshotVersion::V2);
    let view = FrozenApproxView::open_bytes(&bytes).expect("FTBA v2 opens");
    assert_eq!(view.fingerprint(), frozen.fingerprint());
    assert_approx_oracle_honours_contract(&g, &view, ApproxParams::DEFAULT, 6);
    let mut ea = QueryEngine::new();
    let mut eb = QueryEngine::new();
    for spec in fault_specs(&g, 6) {
        for v in g.vertices() {
            assert_eq!(
                ea.try_distance(&frozen, v, &spec).unwrap(),
                eb.try_distance(&view, v, &spec).unwrap(),
                "target {v:?} spec {spec:?}"
            );
        }
    }
}

#[test]
fn engine_matches_ground_truth_on_gnp() {
    for seed in [2015u64, 77] {
        let g = generators::connected_gnp(34, 0.14, seed);
        let frozen = frozen_for(&g, seed);
        assert_oracle_matches_ground_truth(&g, &frozen, 7);
    }
}

#[test]
fn engine_matches_ground_truth_on_cycle_and_grid() {
    let cycle = generators::cycle(24);
    assert_oracle_matches_ground_truth(&cycle, &frozen_for(&cycle, 1), 3);
    let grid = generators::grid(5, 6);
    assert_oracle_matches_ground_truth(&grid, &frozen_for(&grid, 2), 5);
}

#[test]
fn multi_source_oracle_matches_ground_truth() {
    let g = generators::tree_plus_chords(16, 7, 5);
    let sources = [VertexId(0), VertexId(9), VertexId(15)];
    let multi = multi_frozen_for(&g, &sources, 5);
    assert_eq!(multi.sources(), &sources[..]);
    assert_oracle_matches_ground_truth(&g, &multi, 4);
    // Undeclared sources are typed errors, not wrong answers.
    let mut engine = QueryEngine::new();
    assert_eq!(
        engine.try_distance_from(&multi, VertexId(3), VertexId(1), &FaultSpec::None),
        Err(QueryError::UnservedSource {
            source: VertexId(3)
        })
    );
}

#[test]
fn frozen_view_passes_the_full_generic_suite() {
    // The acceptance bar of the v2 snapshot format: a FrozenView opened
    // from the bytes answers the same backend-generic ground-truth suite
    // the rebuilt FrozenStructure does — every engine path, bit-identical
    // to BFS on G ∖ F — while serving straight from the mapped bytes.
    for seed in [2015u64, 77] {
        let g = generators::connected_gnp(34, 0.14, seed);
        let frozen = frozen_for(&g, seed);
        let bytes = frozen.save_with(SnapshotVersion::V2);
        let view = FrozenView::open_bytes(&bytes).expect("v2 snapshot opens");
        assert_eq!(view.fingerprint(), frozen.fingerprint());
        assert_oracle_matches_ground_truth(&g, &view, 7);
    }
    // Also through an owned SnapshotSource (the mmap-shaped entry point).
    let g = generators::grid(5, 6);
    let frozen = frozen_for(&g, 2);
    let source = SnapshotSource::owned(frozen.save_with(SnapshotVersion::V2));
    let view = FrozenView::open(&source).expect("v2 snapshot opens");
    assert_oracle_matches_ground_truth(&g, &view, 5);
}

#[test]
fn frozen_multi_view_passes_the_full_generic_suite() {
    let g = generators::tree_plus_chords(16, 7, 5);
    let sources = [VertexId(0), VertexId(9), VertexId(15)];
    let multi = multi_frozen_for(&g, &sources, 5);
    let bytes = multi.save_with(SnapshotVersion::V2);
    let view = FrozenMultiView::open_bytes(&bytes).expect("v2 snapshot opens");
    assert_eq!(view.fingerprint(), multi.fingerprint());
    assert_eq!(view.sources(), &sources[..]);
    assert_oracle_matches_ground_truth(&g, &view, 4);
    // Views keep the multi contract: undeclared sources are typed errors.
    let mut engine = QueryEngine::new();
    assert_eq!(
        engine.try_distance_from(&view, VertexId(3), VertexId(1), &FaultSpec::None),
        Err(QueryError::UnservedSource {
            source: VertexId(3)
        })
    );
}

#[test]
fn views_match_rebuilt_structures_beyond_the_resilience_too() {
    // Bit-identity between a view and the rebuilt structure must extend to
    // best-effort territory (|F| > f), where answers are defined inside H.
    let g = generators::connected_gnp(28, 0.16, 31);
    let frozen = frozen_for(&g, 31);
    let bytes = frozen.save_with(SnapshotVersion::V2);
    let view = FrozenView::open_bytes(&bytes).unwrap();
    let edges: Vec<EdgeId> = g.edges().collect();
    let spec = FaultSpec::from([edges[0], edges[edges.len() / 2], edges[edges.len() - 1]]);
    let mut ea = QueryEngine::new();
    let mut eb = QueryEngine::new();
    for v in g.vertices() {
        let a = ea.try_distance(&frozen, v, &spec).unwrap();
        let b = eb.try_distance(&view, v, &spec).unwrap();
        assert_eq!(a.guarantee(), Guarantee::BestEffort);
        assert_eq!(a, b, "target {v:?}");
    }
}

#[test]
fn threaded_harness_serves_views_like_structures() {
    let g = generators::connected_gnp(30, 0.15, 44);
    let frozen = frozen_for(&g, 44);
    let bytes = frozen.save_with(SnapshotVersion::V2);
    let view = FrozenView::open_bytes(&bytes).unwrap();
    let edges: Vec<EdgeId> = g.edges().collect();
    let queries: Vec<Query> = (0..400)
        .map(|i| {
            let t = VertexId((i * 11 % g.vertex_count()) as u32);
            Query::new(
                t,
                (edges[i % edges.len()], edges[(i * 7 + 1) % edges.len()]),
            )
        })
        .collect();
    let from_structure = ThroughputHarness::new(3).run(&frozen, &queries);
    let from_view = ThroughputHarness::new(3).run(&view, &queries);
    assert_eq!(from_structure.distances, from_view.distances);
}

#[test]
fn beyond_resilience_answers_are_flagged_best_effort_and_exact_inside_h() {
    let g = generators::connected_gnp(30, 0.16, 21);
    let w = TieBreak::new(&g, 21);
    let h = DualFtBfsBuilder::new(&g, &w, VertexId(0)).build().structure;
    let frozen = h.freeze(&g);
    assert_eq!(frozen.resilience(), 2);
    let structure_edges: Vec<EdgeId> = h.edges().collect();
    let spec = FaultSpec::from([
        structure_edges[0],
        structure_edges[structure_edges.len() / 3],
        structure_edges[2 * structure_edges.len() / 3],
    ]);
    assert_eq!(spec.len(), 3);
    // Ground truth *inside H* — the documented best-effort meaning.
    let removed: Vec<EdgeId> = g.edges().filter(|e| !h.contains(*e)).collect();
    let h_view = GraphView::new(&g)
        .without_edges(removed)
        .without_faults(&spec.to_fault_set());
    let inside_h = bfs(&h_view, VertexId(0));
    let g_truth = ground_truth(&g, VertexId(0), &spec);
    let mut engine = QueryEngine::new();
    for v in g.vertices() {
        let answer = engine.try_distance(&frozen, v, &spec).unwrap();
        assert_eq!(answer.guarantee(), Guarantee::BestEffort);
        let d = answer.into_value();
        assert_eq!(d, inside_h.distance(v), "best effort is exact inside H");
        // And never shorter than the true G ∖ F distance (H ⊆ G).
        match (d, g_truth[v.index()]) {
            (Some(a), Some(b)) => assert!(a >= b),
            (None, Some(_)) | (None, None) => {}
            (Some(_), None) => panic!("H reached a vertex G could not"),
        }
    }
    assert!(engine.stats().best_effort > 0);
}

#[test]
fn batched_and_threaded_queries_match_serial_ground_truth() {
    let g = generators::connected_gnp(40, 0.12, 2015);
    let frozen = frozen_for(&g, 2015);
    let source = frozen.primary_source();
    let edges: Vec<EdgeId> = g.edges().collect();
    // A mixed batch covering all fault sizes, with deliberate repeats.
    let queries: Vec<Query> = (0..600)
        .map(|i| {
            let target = VertexId((i * 13 % g.vertex_count()) as u32);
            match i % 4 {
                0 => Query::fault_free(target),
                1 => Query::new(target, edges[i * 3 % edges.len()]),
                _ => Query::new(
                    target,
                    (edges[i % edges.len()], edges[(i * 11 + 5) % edges.len()]),
                ),
            }
        })
        .collect();
    let expected: Vec<Option<u32>> = queries
        .iter()
        .map(|q| {
            let view = GraphView::new(&g).without_faults(&q.faults.to_fault_set());
            bfs(&view, source).distance(q.target)
        })
        .collect();
    // Batched through one engine (checked and panicking forms agree).
    let mut engine = QueryEngine::new();
    assert_eq!(
        engine.try_batch_distances(&frozen, &queries).unwrap(),
        expected
    );
    assert_eq!(engine.batch_distances(&frozen, &queries), expected);
    // Sharded across 4 threads: same answers, same (input) order.
    let report = ThroughputHarness::new(4).run(&frozen, &queries);
    assert_eq!(report.distances, expected);
    assert_eq!(report.threads, 4);
}

#[test]
fn threaded_multi_source_batches_match_ground_truth() {
    let g = generators::tree_plus_chords(18, 8, 11);
    let sources = [VertexId(0), VertexId(11)];
    let multi = multi_frozen_for(&g, &sources, 11);
    let edges: Vec<EdgeId> = g.edges().collect();
    let queries: Vec<Query> = (0..300)
        .map(|i| {
            let s = sources[i % sources.len()];
            let t = VertexId((i * 7 % g.vertex_count()) as u32);
            match i % 3 {
                0 => Query::from_source(s, t, FaultSpec::None),
                1 => Query::from_source(s, t, edges[i % edges.len()]),
                _ => Query::from_source(
                    s,
                    t,
                    (edges[i % edges.len()], edges[(i * 5 + 2) % edges.len()]),
                ),
            }
        })
        .collect();
    let expected: Vec<Option<u32>> = queries
        .iter()
        .map(|q| {
            let view = GraphView::new(&g).without_faults(&q.faults.to_fault_set());
            bfs(&view, q.source.unwrap()).distance(q.target)
        })
        .collect();
    for threads in [1, 3] {
        let report = ThroughputHarness::new(threads).run(&multi, &queries);
        assert_eq!(report.distances, expected, "threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// freeze → save → load round-trips to an identical structure with
    /// identical answers on a spread of dual-fault queries.
    #[test]
    fn snapshot_roundtrip_preserves_answers(n in 10usize..26, p in 0.12f64..0.3, seed in 0u64..400) {
        let g = generators::connected_gnp(n, p, seed);
        let frozen = frozen_for(&g, seed);
        let loaded = FrozenStructure::load(&frozen.save()).expect("snapshot loads");
        prop_assert_eq!(&loaded, &frozen);
        prop_assert_eq!(loaded.fingerprint(), frozen.fingerprint());
        // The v2 encoding round-trips identically and opens as a view with
        // the same identity.
        let v2 = frozen.save_with(SnapshotVersion::V2);
        prop_assert_eq!(&FrozenStructure::load(&v2).expect("v2 loads"), &frozen);
        prop_assert_eq!(
            FrozenView::open_bytes(&v2).expect("v2 opens").fingerprint(),
            frozen.fingerprint()
        );
        let mut engine_a = QueryEngine::new();
        let mut engine_b = QueryEngine::new();
        for spec in fault_specs(&g, 5) {
            for v in g.vertices() {
                prop_assert_eq!(
                    engine_a.try_distance(&frozen, v, &spec).unwrap().into_value(),
                    engine_b.try_distance(&loaded, v, &spec).unwrap().into_value(),
                    "target {:?}, spec {:?}", v, spec
                );
            }
        }
        // And the reconstructed mutable structure freezes back to the
        // same fingerprint.
        prop_assert_eq!(loaded.to_structure().freeze(&g).fingerprint(), frozen.fingerprint());
    }

    /// Exact backends never report `Guarantee::Approx` — neither from the
    /// oracle's own `guarantee()` nor on any engine answer, at any fault
    /// count, on structures or their mapped views.  The `Approx` tier is
    /// the approximate backend's alone; an exact backend leaking it would
    /// falsely weaken the serving contract.
    #[test]
    fn approx_is_never_reported_on_exact_backends(n in 10usize..26, p in 0.12f64..0.3, seed in 0u64..400) {
        let g = generators::connected_gnp(n, p, seed);
        let frozen = frozen_for(&g, seed);
        let v2 = frozen.save_with(SnapshotVersion::V2);
        let view = FrozenView::open_bytes(&v2).expect("v2 opens");
        let edges: Vec<EdgeId> = g.edges().collect();
        let m = edges.len();
        let specs = [
            FaultSpec::None,
            FaultSpec::One(edges[seed as usize % m]),
            FaultSpec::from((edges[0], edges[m / 2])),
            FaultSpec::from([edges[0], edges[m / 3], edges[m - 1]]),
        ];
        let mut engine = QueryEngine::new();
        for spec in &specs {
            prop_assert!(!frozen.guarantee(spec).is_approx(), "spec {:?}", spec);
            prop_assert!(!view.guarantee(spec).is_approx(), "spec {:?}", spec);
            for v in g.vertices() {
                let answer = engine.try_distance(&frozen, v, spec).unwrap();
                prop_assert!(
                    !answer.guarantee().is_approx(),
                    "exact backend answered Approx at {:?} under {:?}", v, spec
                );
            }
        }
        // Conversely the approximate backend must declare Approx on every
        // in-resilience faulted spec — the tiers partition cleanly.
        let approx = approx_frozen_for(&g, ApproxParams::DEFAULT, seed);
        for spec in &specs {
            let tier = approx.guarantee(spec);
            match spec.len() {
                0 => prop_assert!(tier.is_exact()),
                1 | 2 => prop_assert!(tier.is_approx()),
                _ => prop_assert!(!tier.is_bounded()),
            }
        }
    }

    /// The multi-source snapshot round-trips to identical `S × V` answers.
    #[test]
    fn multi_snapshot_roundtrip_preserves_answers(n in 8usize..16, chords in 2usize..6, seed in 0u64..200) {
        let g = generators::tree_plus_chords(n, chords, seed);
        let sources = [VertexId(0), VertexId((n as u32) - 1)];
        let multi = multi_frozen_for(&g, &sources, seed);
        let loaded = FrozenMultiStructure::load(&multi.save()).expect("snapshot loads");
        prop_assert_eq!(&loaded, &multi);
        prop_assert_eq!(loaded.fingerprint(), multi.fingerprint());
        let v2 = multi.save_with(SnapshotVersion::V2);
        prop_assert_eq!(&FrozenMultiStructure::load(&v2).expect("v2 loads"), &multi);
        prop_assert_eq!(
            FrozenMultiView::open_bytes(&v2).expect("v2 opens").fingerprint(),
            multi.fingerprint()
        );
        let mut engine_a = QueryEngine::new();
        let mut engine_b = QueryEngine::new();
        for spec in fault_specs(&g, 4) {
            let a = engine_a.try_distance_matrix(&multi, &spec).unwrap().into_value();
            let b = engine_b.try_distance_matrix(&loaded, &spec).unwrap().into_value();
            prop_assert_eq!(a, b, "spec {:?}", spec);
        }
    }
}
