//! Equivalence suite for the query-serving subsystem (`ftbfs-oracle`):
//! every query path of the [`QueryEngine`] — fault-free fast path,
//! single-fault, dual-fault, cached repeats, batched, and the sharded
//! multi-threaded harness — must be bit-identical to ground-truth BFS on
//! `G ∖ F`, and snapshots must round-trip to identical answers.
//!
//! Comparing against `G ∖ F` (not `H ∖ F`) is deliberately the stronger
//! check: for `|F| ≤ 2` it verifies both the engine *and* the dual-failure
//! FT-BFS property of the structure it serves.

use ftbfs_core::dual::DualFtBfsBuilder;
use ftbfs_graph::{bfs, generators, EdgeId, FaultSet, Graph, GraphView, TieBreak, VertexId};
use ftbfs_oracle::{Freeze, FrozenStructure, Query, QueryEngine, ThroughputHarness};
use proptest::prelude::*;

/// Ground truth `dist(s, ·, G ∖ F)` for all vertices.
fn ground_truth(g: &Graph, s: VertexId, faults: &FaultSet) -> Vec<Option<u32>> {
    let view = GraphView::new(g).without_faults(faults);
    let res = bfs(&view, s);
    g.vertices().map(|v| res.distance(v)).collect()
}

/// A deterministic spread of fault sets of size 0, 1 and 2 over `g`'s
/// edges (which may or may not belong to the structure).
fn fault_sets(g: &Graph, stride: usize) -> Vec<FaultSet> {
    let edges: Vec<EdgeId> = g.edges().collect();
    let m = edges.len();
    let mut sets = vec![FaultSet::empty()];
    for i in (0..m).step_by(stride.max(1)) {
        sets.push(FaultSet::single(edges[i]));
        sets.push(FaultSet::pair(edges[i], edges[(i * 5 + 3) % m]));
    }
    sets
}

fn frozen_for(g: &Graph, seed: u64) -> FrozenStructure {
    let w = TieBreak::new(g, seed);
    DualFtBfsBuilder::new(g, &w, VertexId(0))
        .build()
        .structure
        .freeze(g)
}

/// The core assertion: every engine path agrees with ground truth on every
/// vertex under every sampled fault set.
fn assert_engine_matches_ground_truth(g: &Graph, frozen: &FrozenStructure, stride: usize) {
    let mut engine = QueryEngine::new();
    let source = frozen.primary_source();
    for faults in fault_sets(g, stride) {
        let expected = ground_truth(g, source, &faults);
        // Single queries (first pass populates tree/cache, second pass
        // re-reads — the cached repeat must stay bit-identical).
        for pass in 0..2 {
            for v in g.vertices() {
                assert_eq!(
                    engine.distance(frozen, v, &faults),
                    expected[v.index()],
                    "pass {pass}, target {v:?}, faults {faults:?}"
                );
            }
        }
        // The bulk read agrees slot for slot.
        assert_eq!(engine.all_distances(frozen, &faults), expected);
        // Paths exist exactly where distances do, with matching lengths,
        // valid edges, and no failed edge.
        for v in g.vertices() {
            match engine.shortest_path(frozen, v, &faults) {
                Some(p) => {
                    assert_eq!(Some(p.len() as u32), expected[v.index()]);
                    assert!(p.is_valid_in(g));
                    assert!(!faults.intersects_path(g, &p));
                }
                None => assert_eq!(expected[v.index()], None, "missing path to {v:?}"),
            }
        }
    }
}

#[test]
fn engine_matches_ground_truth_on_gnp() {
    for seed in [2015u64, 77] {
        let g = generators::connected_gnp(34, 0.14, seed);
        let frozen = frozen_for(&g, seed);
        assert_engine_matches_ground_truth(&g, &frozen, 7);
    }
}

#[test]
fn engine_matches_ground_truth_on_cycle_and_grid() {
    let cycle = generators::cycle(24);
    assert_engine_matches_ground_truth(&cycle, &frozen_for(&cycle, 1), 3);
    let grid = generators::grid(5, 6);
    assert_engine_matches_ground_truth(&grid, &frozen_for(&grid, 2), 5);
}

#[test]
fn batched_and_threaded_queries_match_serial_ground_truth() {
    let g = generators::connected_gnp(40, 0.12, 2015);
    let frozen = frozen_for(&g, 2015);
    let source = frozen.primary_source();
    let edges: Vec<EdgeId> = g.edges().collect();
    // A mixed batch covering all fault sizes, with deliberate repeats.
    let queries: Vec<Query> = (0..600)
        .map(|i| {
            let target = VertexId((i * 13 % g.vertex_count()) as u32);
            let faults = match i % 4 {
                0 => FaultSet::empty(),
                1 => FaultSet::single(edges[i * 3 % edges.len()]),
                _ => FaultSet::pair(edges[i % edges.len()], edges[(i * 11 + 5) % edges.len()]),
            };
            Query::new(target, faults)
        })
        .collect();
    let expected: Vec<Option<u32>> = queries
        .iter()
        .map(|q| {
            let view = GraphView::new(&g).without_faults(&q.faults);
            bfs(&view, source).distance(q.target)
        })
        .collect();
    // Batched through one engine.
    let mut engine = QueryEngine::new();
    assert_eq!(engine.batch_distances(&frozen, &queries), expected);
    // Sharded across 4 threads: same answers, same (input) order.
    let report = ThroughputHarness::new(4).run(&frozen, &queries);
    assert_eq!(report.distances, expected);
    assert_eq!(report.threads, 4);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// freeze → save → load round-trips to an identical structure with
    /// identical answers on a spread of dual-fault queries.
    #[test]
    fn snapshot_roundtrip_preserves_answers(n in 10usize..26, p in 0.12f64..0.3, seed in 0u64..400) {
        let g = generators::connected_gnp(n, p, seed);
        let frozen = frozen_for(&g, seed);
        let loaded = FrozenStructure::load(&frozen.save()).expect("snapshot loads");
        prop_assert_eq!(&loaded, &frozen);
        prop_assert_eq!(loaded.fingerprint(), frozen.fingerprint());
        let mut engine_a = QueryEngine::new();
        let mut engine_b = QueryEngine::new();
        for faults in fault_sets(&g, 5) {
            for v in g.vertices() {
                prop_assert_eq!(
                    engine_a.distance(&frozen, v, &faults),
                    engine_b.distance(&loaded, v, &faults),
                    "target {:?}, faults {:?}", v, faults
                );
            }
        }
        // And the reconstructed mutable structure freezes back to the
        // same fingerprint.
        prop_assert_eq!(loaded.to_structure().freeze(&g).fingerprint(), frozen.fingerprint());
    }
}
