//! Cross-crate structural tests: the analysis machinery (kernel graphs,
//! detour configurations, path classes) applied to real construction records
//! must satisfy the structural claims of Section 3.

use ftbfs_analysis::{
    classify_construction, configuration_census, DetourConfiguration, KernelGraph,
};
use ftbfs_core::dual::DualFtBfsBuilder;
use ftbfs_graph::{generators, Graph, TieBreak, VertexId};
use ftbfs_lowerbound::GStarGraph;

fn build_with_records(g: &Graph, seed: u64) -> ftbfs_core::dual::DualFtBfs {
    let w = TieBreak::new(g, seed);
    DualFtBfsBuilder::new(g, &w, VertexId(0))
        .record_paths(true)
        .build()
}

#[test]
fn recorded_detours_are_edge_disjoint_from_pi() {
    for seed in 0..3u64 {
        let g = generators::connected_gnp(30, 0.12, seed);
        let r = build_with_records(&g, seed);
        for rec in &r.records {
            for dr in &rec.detours {
                let d = &dr.decomposition.detour;
                // Claim 3.4: the detour meets pi only at its endpoints.
                for vtx in d.path.vertices() {
                    if *vtx != d.x && *vtx != d.y {
                        assert!(
                            !rec.pi.contains_vertex(*vtx),
                            "detour interior vertex {vtx:?} lies on pi"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn kernel_graph_contains_second_faults_of_new_ending_paths() {
    // Empirical check of the Lemma 3.14 consequence: the second fault of
    // every recorded new-ending (π,D) path lies inside the kernel of that
    // vertex's detours (its detour prefix up to the fault is in the kernel).
    for seed in [1u64, 5, 9] {
        let g = generators::connected_gnp(40, 0.1, seed);
        let r = build_with_records(&g, seed);
        for rec in &r.records {
            if rec.new_ending.is_empty() {
                continue;
            }
            let detours: Vec<_> = rec
                .detours
                .iter()
                .map(|d| d.decomposition.detour.clone())
                .collect();
            let kernel = KernelGraph::build(&rec.pi, &detours);
            for ne in &rec.new_ending {
                let d = &detours[ne.detour_index];
                let ep = g.endpoints(ne.second_fault);
                assert!(
                    kernel.covers_fault(d, ep.u, ep.v),
                    "second fault {:?} of a new-ending path escapes the kernel",
                    ne.second_fault
                );
            }
        }
    }
}

#[test]
fn dependent_detour_pairs_are_never_nested_or_non_nested() {
    // Claims 3.8 and 3.9: dependent detours (sharing a vertex) cannot be in
    // the nested or non-nested configuration.
    let graphs = vec![
        generators::connected_gnp(50, 0.1, 2),
        generators::grid(7, 7),
        GStarGraph::single_source(2, 3, 8).graph,
    ];
    for g in &graphs {
        let r = build_with_records(g, 3);
        for rec in &r.records {
            let detours: Vec<_> = rec
                .detours
                .iter()
                .map(|d| &d.decomposition.detour)
                .filter(|d| !d.is_empty())
                .collect();
            for i in 0..detours.len() {
                for j in (i + 1)..detours.len() {
                    let a = ftbfs_analysis::classify_detour_pair(&rec.pi, detours[i], detours[j]);
                    if a.dependent {
                        assert_ne!(a.configuration, DetourConfiguration::Nested);
                        assert_ne!(a.configuration, DetourConfiguration::NonNested);
                    }
                }
            }
        }
    }
}

#[test]
fn census_totals_match_pair_counts() {
    let g = generators::connected_gnp(40, 0.12, 7);
    let r = build_with_records(&g, 7);
    let census = configuration_census(&r.records);
    let by_config_total: usize = census.by_configuration.values().sum();
    assert_eq!(by_config_total, census.total_pairs());
    assert_eq!(
        census.dependent_pairs,
        census.forward_pairs + census.reverse_pairs
    );
}

#[test]
fn per_vertex_new_edges_stay_below_the_theorem_bound_with_small_constant() {
    // Not a proof — a regression guard: on these workloads max |New(v)| must
    // stay below 4 * n^{2/3} (Theorem 1.1's per-vertex bound with a small
    // constant) and the (π,π) class below 4 * sqrt(n).
    let workloads = vec![
        generators::connected_gnp(60, 0.08, 3),
        generators::connected_gnp(90, 0.06, 4),
        GStarGraph::single_source(2, 3, 12).graph,
    ];
    for g in &workloads {
        let r = build_with_records(g, 11);
        let summary = classify_construction(g, &r);
        let n = g.vertex_count() as f64;
        assert!(
            (summary.max_new_edges as f64) <= 4.0 * n.powf(2.0 / 3.0),
            "max |New(v)| = {} exceeds 4 n^(2/3) = {}",
            summary.max_new_edges,
            4.0 * n.powf(2.0 / 3.0)
        );
        for vc in &summary.per_vertex {
            assert!(
                (vc.counts.pi_pi as f64) <= 4.0 * n.sqrt(),
                "per-vertex (π,π) count {} exceeds 4 sqrt(n)",
                vc.counts.pi_pi
            );
        }
    }
}

#[test]
fn classification_is_exhaustive_over_new_ending_records() {
    let g = generators::connected_gnp(50, 0.1, 13);
    let r = build_with_records(&g, 13);
    let summary = classify_construction(&g, &r);
    let recorded_pid: usize = r.records.iter().map(|rec| rec.new_ending.len()).sum();
    let recorded_pipi: usize = r.records.iter().map(|rec| rec.pi_pi_new.len()).sum();
    assert_eq!(
        summary.totals.total(),
        recorded_pid + recorded_pipi,
        "every recorded new-ending path is classified exactly once"
    );
}
