//! Robustness of the corpus ingestion paths against malformed input: a
//! pipeline streaming a graph file from disk or the network must get a
//! typed [`CorpusError`] (or a clean parse) for *any* corruption — and
//! must **never panic**.  Mirrors `snapshot_robustness.rs` for the two
//! corpus formats:
//!
//! * the checksummed `FTBG` binary format, where every truncation point
//!   and every single-byte flip must be a typed error (every byte is
//!   covered by the magic, the header fields, or the trailing FNV-1a
//!   checksum);
//! * the text edge-list dialects, where a mutation may still be a valid
//!   file (text is self-describing line by line) — so the contract is
//!   "typed error or clean parse, never a panic".
//!
//! Deterministic sweeps cover every offset on small instances; proptest
//! then fuzzes (offset, xor, truncation) combinations on larger ones.

use ftbfs_corpus::{ingest_text, read_binary, write_binary, CorpusError, FTBG_HEADER_LEN};
use ftbfs_graph::generators;
use ftbfs_graph::io::{to_edge_list, IngestOptions};
use proptest::prelude::*;

fn binary_corpus(seed: u64) -> Vec<u8> {
    write_binary(&generators::connected_gnp(30, 0.12, seed))
}

fn text_corpus(seed: u64) -> Vec<u8> {
    to_edge_list(&generators::connected_gnp(30, 0.12, seed)).into_bytes()
}

/// Every decode attempt over corrupted binary input must produce `Err`,
/// never a panic and never a graph.
fn assert_binary_rejects(data: &[u8], what: &str) {
    if read_binary(data, IngestOptions::strict()).is_ok() {
        panic!("{what}: corrupted FTBG input unexpectedly decoded");
    }
}

/// Text input may survive a mutation (a digit flip is just a different
/// edge list); the contract is only that the parser returns — any panic
/// fails the test harness itself.
fn text_must_return(data: &[u8]) {
    let _ = ingest_text(data, IngestOptions::strict());
    let _ = ingest_text(data, IngestOptions::remapping());
}

#[test]
fn binary_every_truncation_point_is_a_typed_error() {
    let bytes = binary_corpus(3);
    for cut in 0..bytes.len() {
        assert_binary_rejects(&bytes[..cut], "truncation");
    }
}

#[test]
fn binary_every_single_byte_flip_is_rejected() {
    // One flip per byte position (bit chosen by position): header flips
    // hit magic/version/flags/count validation, record and trailer flips
    // hit the FNV-1a checksum (byte-wise injective, so a single flip can
    // never collide back to validity).
    let bytes = binary_corpus(5);
    for i in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 1 << (i % 8);
        assert_binary_rejects(&mutated, "bit flip");
    }
}

#[test]
fn binary_foreign_and_cross_magic_are_bad_magic() {
    assert_eq!(
        read_binary(&b""[..], IngestOptions::strict()).unwrap_err(),
        CorpusError::Truncated { at: 0 }
    );
    // A snapshot magic (`FTBO`) under the binary decoder is not an FTBG
    // file, whatever follows.
    let mut crossed = binary_corpus(7);
    crossed[..4].copy_from_slice(b"FTBO");
    assert_eq!(
        read_binary(&crossed[..], IngestOptions::strict()).unwrap_err(),
        CorpusError::BadMagic
    );
}

#[test]
fn binary_trailing_bytes_are_rejected_even_when_zero() {
    // The FTBG encoding is canonical — exactly one byte string per graph
    // — so appended bytes must be rejected even if they are zeros.
    for extra in [1usize, 7, 64] {
        let bytes = binary_corpus(9);
        let mut extended = bytes.clone();
        extended.resize(bytes.len() + extra, 0);
        assert_eq!(
            read_binary(&extended[..], IngestOptions::strict()).unwrap_err(),
            CorpusError::TrailingBytes { count: 1 },
            "the probe reports the first trailing byte"
        );
    }
}

#[test]
fn text_every_single_byte_flip_returns() {
    let bytes = text_corpus(3);
    for i in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 1 << (i % 8);
        text_must_return(&mutated);
    }
}

#[test]
fn text_every_truncation_point_returns() {
    let bytes = text_corpus(5);
    for cut in 0..bytes.len() {
        text_must_return(&bytes[..cut]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Random single-byte mutations at proptest-chosen offsets never
    /// panic and never decode, across seeds.
    #[test]
    fn binary_mutations_never_panic(
        seed in 0u64..40,
        offset_sel in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let bytes = binary_corpus(seed);
        let offset = ((bytes.len() - 1) as f64 * offset_sel) as usize;
        let mut mutated = bytes.clone();
        mutated[offset] ^= xor;
        prop_assert!(read_binary(&mutated[..], IngestOptions::strict()).is_err());
        // The pristine copy must keep decoding.
        prop_assert!(read_binary(&bytes[..], IngestOptions::strict()).is_ok());
    }

    /// Multi-byte splices — which could in principle collide the checksum
    /// back to validity — still never panic; record validation backs the
    /// checksum up.
    #[test]
    fn binary_splices_never_panic(
        seed in 0u64..20,
        offset_sel in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let bytes = binary_corpus(seed);
        let body = bytes.len() - FTBG_HEADER_LEN - 8;
        let src = FTBG_HEADER_LEN + ((body - 1) as f64 * offset_sel) as usize;
        let dst = FTBG_HEADER_LEN + (src * 7 + 3) % body;
        let mut mutated = bytes.clone();
        mutated[dst] = mutated[src].wrapping_add(xor);
        if mutated != bytes {
            prop_assert!(read_binary(&mutated[..], IngestOptions::strict()).is_err());
        }
    }

    /// Truncation at a proptest-chosen point is always a typed error.
    #[test]
    fn binary_truncations_never_panic(seed in 0u64..20, cut_sel in 0.0f64..1.0) {
        let bytes = binary_corpus(seed);
        let cut = ((bytes.len() - 1) as f64 * cut_sel) as usize;
        prop_assert!(read_binary(&bytes[..cut], IngestOptions::strict()).is_err());
    }

    /// Random text mutations — flips, truncations, and line splices —
    /// return cleanly under both ingestion option sets.
    #[test]
    fn text_mutations_never_panic(
        seed in 0u64..40,
        offset_sel in 0.0f64..1.0,
        xor in 1u8..=255,
        cut_sel in 0.0f64..1.0,
    ) {
        let bytes = text_corpus(seed);
        let offset = ((bytes.len() - 1) as f64 * offset_sel) as usize;
        let mut mutated = bytes.clone();
        mutated[offset] ^= xor;
        text_must_return(&mutated);
        let cut = ((bytes.len() - 1) as f64 * cut_sel) as usize;
        text_must_return(&bytes[..cut]);
        // Splice a chunk of the file over another position (duplicated or
        // reordered lines, torn headers).
        let mut spliced = bytes.clone();
        let chunk = (spliced.len() / 3).max(1);
        let dst = spliced.len() - chunk;
        spliced.copy_within(0..chunk, dst);
        text_must_return(&spliced);
    }
}
