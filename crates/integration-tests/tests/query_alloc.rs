//! Allocation accounting for the query engine: after warm-up,
//! trait-dispatched dual-fault distance queries on the acceptance workload
//! (`connected_gnp(120, 0.08)`) must allocate **nothing** — the whole point
//! of the epoch-stamped workspace and the buffer-reusing partitioned fault
//! LRU, preserved across the `DistanceOracle` redesign.
//!
//! Measured with a counting wrapper around the system allocator, which
//! needs `unsafe` for the `GlobalAlloc` impl — the one place in the
//! workspace where the `unsafe_code` lint is locally allowed.

#![allow(unsafe_code)]

use ftbfs_core::dual::DualFtBfsBuilder;
use ftbfs_core::multi_failure_ftmbfs_parts;
use ftbfs_graph::{generators, EdgeId, FaultSpec, TieBreak, VertexId};
use ftbfs_oracle::{Freeze, FrozenMultiStructure, FrozenView, Query, QueryEngine, SnapshotVersion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation routed through the global
/// allocator (deallocations are free and not counted).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn dual_fault_queries_allocate_nothing_after_warmup() {
    // The acceptance workload: the PR-2 construction instance.
    let g = generators::connected_gnp(120, 0.08, 42);
    let w = TieBreak::new(&g, 42);
    let h = DualFtBfsBuilder::new(&g, &w, VertexId(0)).build().structure;
    let frozen = h.freeze(&g);
    let structure_edges: Vec<EdgeId> = h.edges().collect();

    // Pre-build every spec and query object: constructing `Many` specs
    // allocates, executing queries must not.  24 distinct pairs exceed the
    // default per-partition capacity of 16, so the eviction path is
    // exercised too.
    let fault_pairs: Vec<FaultSpec> = (0..24)
        .map(|i| {
            FaultSpec::from((
                structure_edges[i * 5 % structure_edges.len()],
                structure_edges[(i * 9 + 2) % structure_edges.len()],
            ))
        })
        .collect();
    let queries: Vec<Query> = (0..512)
        .map(|i| {
            Query::new(
                VertexId((i * 7 % g.vertex_count()) as u32),
                fault_pairs[i % fault_pairs.len()].clone(),
            )
        })
        .collect();
    let mut out = vec![None; queries.len()];

    let mut engine = QueryEngine::new();
    // Warm-up: sizes the workspace, populates the LRU, then goes around
    // again so every buffer has reached steady state.
    for _ in 0..2 {
        engine.batch_distances_into(&frozen, &queries, &mut out);
    }

    let before = allocation_count();
    engine.batch_distances_into(&frozen, &queries, &mut out);
    for (q, spec) in queries.iter().zip(fault_pairs.iter().cycle()) {
        let answer = engine.try_distance(&frozen, q.target, spec).unwrap();
        assert!(answer.is_exact());
    }
    let after = allocation_count();

    assert_eq!(
        after - before,
        0,
        "warmed-up trait-dispatched dual-fault queries must not allocate"
    );
    // Sanity: the warmed-up answers are still real answers.
    assert!(out.iter().filter(|d| d.is_some()).count() > out.len() / 2);
}

#[test]
fn mmap_style_view_queries_allocate_nothing_after_warmup() {
    // The v2 serving path: open a view over snapshot bytes (zero rebuild,
    // zero copy of the big arrays) and serve the same dual-fault workload.
    // After warm-up the engine must allocate exactly as little over the
    // byte-backed slabs as over the heap-built ones: nothing.
    let g = generators::connected_gnp(120, 0.08, 42);
    let w = TieBreak::new(&g, 42);
    let h = DualFtBfsBuilder::new(&g, &w, VertexId(0)).build().structure;
    let bytes = h.freeze(&g).save_with(SnapshotVersion::V2);
    let structure_edges: Vec<EdgeId> = h.edges().collect();
    let view = FrozenView::open_bytes(&bytes).expect("v2 snapshot opens");

    let fault_pairs: Vec<FaultSpec> = (0..24)
        .map(|i| {
            FaultSpec::from((
                structure_edges[i * 5 % structure_edges.len()],
                structure_edges[(i * 9 + 2) % structure_edges.len()],
            ))
        })
        .collect();
    let queries: Vec<Query> = (0..512)
        .map(|i| {
            Query::new(
                VertexId((i * 7 % g.vertex_count()) as u32),
                fault_pairs[i % fault_pairs.len()].clone(),
            )
        })
        .collect();
    let mut out = vec![None; queries.len()];
    let mut engine = QueryEngine::new();
    for _ in 0..2 {
        engine.batch_distances_into(&view, &queries, &mut out);
    }

    let before = allocation_count();
    engine.batch_distances_into(&view, &queries, &mut out);
    for (q, spec) in queries.iter().zip(fault_pairs.iter().cycle()) {
        let answer = engine.try_distance(&view, q.target, spec).unwrap();
        assert!(answer.is_exact());
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warmed-up queries over a mapped snapshot view must not allocate"
    );
    assert!(out.iter().filter(|d| d.is_some()).count() > out.len() / 2);
}

#[test]
fn instrumented_hot_path_allocates_nothing_after_warmup() {
    // The telemetry-plane guarantee: the fully instrumented serving hot
    // path — engine hooks recording into registry counters plus explicit
    // histogram samples, exactly what a `StreamServer` worker does per
    // request — allocates nothing after warm-up.  Relaxed atomic adds
    // into pre-registered cells only.
    use ftbfs_oracle::Freeze;
    use ftbfs_telemetry::{CounterRecorder, MetricsRegistry};

    let g = generators::connected_gnp(120, 0.08, 42);
    let w = TieBreak::new(&g, 42);
    let h = DualFtBfsBuilder::new(&g, &w, VertexId(0)).build().structure;
    let frozen = h.freeze(&g);
    let structure_edges: Vec<EdgeId> = h.edges().collect();

    let registry = MetricsRegistry::new();
    let recorder = CounterRecorder::register(&registry, &[]);
    let stage_hist = registry.histogram("test_stage_ns", "stage latency", 2);

    let fault_pairs: Vec<FaultSpec> = (0..24)
        .map(|i| {
            FaultSpec::from((
                structure_edges[i * 5 % structure_edges.len()],
                structure_edges[(i * 9 + 2) % structure_edges.len()],
            ))
        })
        .collect();
    let queries: Vec<Query> = (0..512)
        .map(|i| {
            Query::new(
                VertexId((i * 7 % g.vertex_count()) as u32),
                fault_pairs[i % fault_pairs.len()].clone(),
            )
        })
        .collect();
    let mut out = vec![None; queries.len()];

    let mut engine = ftbfs_oracle::QueryEngine::with_recorder(recorder);
    for _ in 0..2 {
        engine.batch_distances_into(&frozen, &queries, &mut out);
    }

    let before = allocation_count();
    engine.batch_distances_into(&frozen, &queries, &mut out);
    for (i, (q, spec)) in queries.iter().zip(fault_pairs.iter().cycle()).enumerate() {
        let answer = engine.try_distance(&frozen, q.target, spec).unwrap();
        assert!(answer.is_exact());
        stage_hist.for_shard(i % 2).record(1_000 + i as u64);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warmed-up instrumented queries + histogram records must not allocate"
    );

    // The hooks really fired: every query the engine ever ran (two
    // warm-up batches, the measured batch, the point-query loop) landed
    // in exactly one of the three routing counters.
    let scrape = registry.scrape();
    let routed: u64 = scrape
        .counters
        .iter()
        .filter(|c| {
            c.name == ftbfs_telemetry::names::ENGINE_TREE_HITS
                || c.name == ftbfs_telemetry::names::ENGINE_CACHE_HITS
                || c.name == ftbfs_telemetry::names::ENGINE_SEARCHES
        })
        .map(|c| c.value)
        .sum();
    assert_eq!(routed as usize, 4 * queries.len());
}

#[test]
fn fault_free_queries_allocate_nothing_at_all_after_freeze() {
    let g = generators::connected_gnp(120, 0.08, 43);
    let w = TieBreak::new(&g, 43);
    let h = DualFtBfsBuilder::new(&g, &w, VertexId(0)).build().structure;
    let frozen = h.freeze(&g);
    let mut engine = QueryEngine::new();
    // One query to bind the engine (sizing its arrays allocates once).
    let _ = engine.try_distance(&frozen, VertexId(1), &FaultSpec::None);

    let before = allocation_count();
    for v in g.vertices() {
        let _ = engine.try_distance(&frozen, v, &FaultSpec::None);
    }
    let after = allocation_count();
    assert_eq!(after - before, 0, "tree fast path must not allocate");
    assert_eq!(engine.stats().searches, 0);
}

#[test]
fn multi_source_matrix_allocates_nothing_into_a_preallocated_slice() {
    let g = generators::tree_plus_chords(40, 14, 17);
    let w = TieBreak::new(&g, 17);
    let sources = [VertexId(0), VertexId(20), VertexId(39)];
    let parts = multi_failure_ftmbfs_parts(&g, &w, &sources, 2);
    let multi = FrozenMultiStructure::freeze(&g, &parts);
    let edges: Vec<EdgeId> = g.edges().collect();
    let specs = [
        FaultSpec::None,
        FaultSpec::One(edges[1]),
        FaultSpec::from((edges[2], edges[edges.len() / 2])),
    ];
    let mut flat = vec![None; sources.len() * g.vertex_count()];
    let mut engine = QueryEngine::new();
    // Warm-up resolves every (source, spec) restriction once.
    for spec in &specs {
        engine
            .try_distance_matrix_into(&multi, spec, &mut flat)
            .unwrap();
    }

    let before = allocation_count();
    for spec in &specs {
        let guarantee = engine
            .try_distance_matrix_into(&multi, spec, &mut flat)
            .unwrap();
        assert!(guarantee.is_exact());
    }
    // Point queries across sources stay allocation-free too.
    for (i, &s) in sources.iter().enumerate() {
        let _ = engine
            .try_distance_from(&multi, s, VertexId((i * 11) as u32), &specs[2])
            .unwrap();
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warmed-up S × V matrix serving must not allocate"
    );
    assert!(flat.iter().filter(|d| d.is_some()).count() > flat.len() / 2);
}
