//! Minimal, dependency-free stand-in for the
//! [`memmap2`](https://crates.io/crates/memmap2) crate, vendored because
//! the build environment has no network access to crates.io.
//!
//! Only the read-only surface the workspace uses is provided: an
//! [`Mmap`] that derefs to `&[u8]` and is constructed from an open
//! [`File`] via [`Mmap::map`].  The stand-in **reads the file into an
//! anonymous buffer** instead of establishing a real memory mapping —
//! the real crate's `Mmap::map` is `unsafe` (the mapping's validity
//! depends on the file not being truncated behind it), and this
//! workspace denies `unsafe_code`.  Callers get identical semantics for
//! immutable snapshot files: zero-copy *views* over the bytes, stable
//! addresses for the lifetime of the `Mmap`, `len`/`Deref`/`AsRef`
//! exactly as upstream.  Swapping in the real crate is the usual
//! one-line change in `[workspace.dependencies]` (plus an
//! `unsafe { ... }` at the single `map` call site).
//!
//! The upstream API takes `&File` and leaves the offset/length
//! defaulting to the whole file; so does this stand-in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::ops::Deref;

/// An immutable byte view over a file's full contents.
///
/// Stand-in for `memmap2::Mmap`: same construction path and read-only
/// accessor surface, backed by an owned buffer rather than a kernel
/// mapping (see the crate docs for why).
pub struct Mmap {
    bytes: Vec<u8>,
}

impl Mmap {
    /// Maps the whole of `file` read-only.
    ///
    /// Upstream this is `unsafe fn map`; the stand-in is safe because it
    /// copies rather than maps.  Reads from the file's start regardless
    /// of the current cursor, like a real mapping would.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let mut f = file;
        let len = f.metadata()?.len();
        let mut bytes = Vec::with_capacity(len.min(usize::MAX as u64) as usize);
        f.seek(SeekFrom::Start(0))?;
        f.read_to_end(&mut bytes)?;
        Ok(Mmap { bytes })
    }

    /// Length of the mapped region in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the mapped region is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.bytes
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_whole_file_from_any_cursor_position() {
        let dir = std::env::temp_dir();
        let path = dir.join("memmap2_standin_test.bin");
        let payload: Vec<u8> = (0u8..=255).collect();
        std::fs::write(&path, &payload).unwrap();

        let mut file = File::open(&path).unwrap();
        // Disturb the cursor: map must still see the whole file.
        let mut scratch = [0u8; 7];
        file.read_exact(&mut scratch).unwrap();

        let map = Mmap::map(&file).unwrap();
        assert_eq!(map.len(), 256);
        assert!(!map.is_empty());
        assert_eq!(&map[..], &payload[..]);
        assert_eq!(map.as_ref()[255], 255);
        assert!(format!("{map:?}").contains("256"));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_files_map_to_empty_slices() {
        let dir = std::env::temp_dir();
        let path = dir.join("memmap2_standin_empty.bin");
        {
            let mut f = File::create(&path).unwrap();
            f.flush().unwrap();
        }
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert_eq!(map.len(), 0);
        assert!(map.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
