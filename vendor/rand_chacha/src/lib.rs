//! Minimal stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, vendored because the build environment has no network access.
//!
//! The block function is a genuine ChaCha implementation (RFC 8439 layout,
//! 64-bit block counter, zero nonce) parameterised over the round count, so
//! [`ChaCha8Rng`] / [`ChaCha12Rng`] / [`ChaCha20Rng`] really do the
//! advertised amount of mixing.  Streams are deterministic per seed but not
//! bit-compatible with the real crate (which uses a different word order
//! for its RNG output); the workspace only relies on determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha_block<const ROUNDS: usize>(key: &[u32; 8], counter: u64) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CHACHA_CONST);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    // state[14], state[15]: zero nonce (one stream per seed).
    let initial = state;
    for _ in 0..ROUNDS / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (w, i) in state.iter_mut().zip(initial) {
        *w = w.wrapping_add(i);
    }
    state
}

/// A ChaCha-based generator with a compile-time round count.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

/// ChaCha with 8 rounds — the workspace's workhorse generator.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.idx == 16 {
            self.buf = chacha_block::<ROUNDS>(&self.key, self.counter);
            self.counter = self.counter.wrapping_add(1);
            self.idx = 0;
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks(4)) {
            let mut b = [0u8; 4];
            b.copy_from_slice(chunk);
            *word = u32::from_le_bytes(b);
        }
        ChaChaRng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(2015);
        let mut b = ChaCha8Rng::seed_from_u64(2015);
        for _ in 0..200 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "seeds 1 and 2 produced {same}/64 equal words");
    }

    #[test]
    fn rfc8439_block_function_matches_known_vector() {
        // RFC 8439 §2.3.2 test vector: 20 rounds, key 00..1f, counter 1,
        // nonce 000000090000004a00000000.  Our RNG layout fixes the nonce
        // to zero, so exercise the block function directly with the
        // vector's nonce spliced into the counter words.
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            let b = (4 * i) as u32;
            *w = u32::from_le_bytes([b as u8, b as u8 + 1, b as u8 + 2, b as u8 + 3]);
        }
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&key);
        state[12] = 1;
        state[13] = 0x0900_0000;
        state[14] = 0x4a00_0000;
        state[15] = 0;
        let initial = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (w, i) in state.iter_mut().zip(initial) {
            *w = w.wrapping_add(i);
        }
        assert_eq!(state[0], 0xe4e7_f110);
        assert_eq!(state[15], 0x4e3c_50a2);
    }

    #[test]
    fn gen_range_uniformity_smoke() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[r.gen_range(0..10usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((800..1200).contains(&b), "bucket {i} = {b}");
        }
    }
}
