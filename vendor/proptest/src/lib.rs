//! Minimal stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, vendored because the build environment has no network access.
//!
//! Supported surface (what the workspace's property tests use):
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` header and `arg in strategy` parameters;
//! * range strategies over integers and floats (`8usize..18`,
//!   `0.15f64..0.4`, …);
//! * [`collection::vec`] for `Vec`-valued arguments (also reachable as
//!   `prop::collection::vec`, as with the real crate's prelude);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Each generated test runs `config.cases` deterministic cases seeded from
//! the test's name, so failures are reproducible run-to-run.  On failure
//! the panic message includes the case number and the sampled arguments.
//! There is **no shrinking** and no persistence of failing seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test-runner configuration and the deterministic case RNG.

    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    ///
    /// Only `cases` changes behaviour; the other fields exist so struct
    /// literals written against the real crate keep compiling.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for compatibility; the stand-in never shrinks.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; the stand-in never rejects.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
                max_global_rejects: 0,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases, like `ProptestConfig::with_cases`.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// Derives a per-test deterministic RNG from the test's name.
    pub fn deterministic_rng(test_name: &str) -> ChaCha8Rng {
        // FNV-1a over the name keeps distinct tests on distinct streams.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        ChaCha8Rng::seed_from_u64(hash)
    }
}

pub mod strategy {
    //! Value-generation strategies (ranges only).

    use rand::{Rng, RngCore};

    /// Something that can produce values for a property-test argument.
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // The rand stand-in has no inclusive float sampling; map a
            // half-open uniform affinely onto the inclusive range (the
            // endpoint is reachable through rounding in the map).
            let u = rng.gen_range(0.0f64..1.0);
            self.start() + u * (self.end() - self.start())
        }
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::strategy::Strategy;
    use rand::{Rng, RngCore};

    /// Strategy producing `Vec`s of `element`-sampled values with a
    /// length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `Vec` strategy constructor, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs, mirroring
    //! `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a zero-arg
/// test that samples the strategies `config.cases` times from a
/// deterministic per-test RNG and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!({ $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            { $crate::test_runner::ProptestConfig::default() }
            $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ({ $config:expr }) => {};
    (
        { $config:expr }
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::deterministic_rng(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(payload) = result {
                    let described = format!(
                        concat!("case {} of ", stringify!($name), "(", $(stringify!($arg), " = {:?}, ",)+ ")"),
                        case, $(&$arg),+
                    );
                    eprintln!("proptest failure: {described}");
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items!({ $config } $($rest)*);
    };
}

/// `assert!` under a property: panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

        /// Sampled values respect their ranges and the config runs.
        #[test]
        fn ranges_stay_in_bounds(n in 8usize..18, p in 0.15f64..0.4, seed in 0u64..500) {
            prop_assert!((8..18).contains(&n));
            prop_assert!((0.15..0.4).contains(&p));
            prop_assert!(seed < 500);
        }
    }

    proptest! {
        /// The default config also works (no config header).
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
            prop_assert_eq!(x + 1, x + 1);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use rand::RngCore;
        let mut a = crate::test_runner::deterministic_rng("t");
        let mut b = crate::test_runner::deterministic_rng("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
