//! Minimal, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8-style API), vendored because the build environment has no
//! network access to crates.io.
//!
//! Only the surface actually used by this workspace is provided:
//!
//! * [`RngCore`] / [`SeedableRng`] (with the SplitMix64-based
//!   [`SeedableRng::seed_from_u64`] expansion);
//! * [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`];
//! * [`seq::SliceRandom`] with Fisher–Yates [`seq::SliceRandom::shuffle`]
//!   and [`seq::SliceRandom::choose`].
//!
//! Generated streams are deterministic per seed but are **not**
//! bit-compatible with the real `rand` crate; workspace tests only rely on
//! determinism, never on specific stream values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 32/64-bit words and bytes.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 and instantiates
    /// the generator; the conventional way the workspace seeds its RNGs.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A half-open range that values can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift uniform mapping; bias is < 2^-64 per draw,
                // far below anything the workspace's statistics can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let value = self.start + unit * (self.end - self.start);
        // The two roundings above can land exactly on `end`; keep the
        // half-open contract (the bug real rand fixed in rust-random#494).
        if value >= self.end {
            f64::from_bits(self.end.to_bits() - 1)
        } else {
            value
        }
    }
}

/// Convenience methods layered on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related helpers (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Randomised operations on slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

pub mod rngs {
    //! Named generators (a small deterministic [`StdRng`]).

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**-style core).
    ///
    /// Unlike the real `rand::rngs::StdRng` this is not cryptographically
    /// strong; the workspace only uses seeded RNGs for workload generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state, which is a fixed point.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20usize);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
