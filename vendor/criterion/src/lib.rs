//! Minimal, dependency-free stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored because the build environment has no network access.
//!
//! The subset used by the workspace's `benches/` is implemented with real
//! (if statistically naive) measurement: each benchmark runs a short
//! warm-up, then `sample_size` timed samples, and prints mean/min/max wall
//! clock per iteration.  No plots, no outlier analysis, no saved baselines.
//! The `criterion_main!`-generated `main` ignores command-line arguments,
//! so `cargo bench` (which appends `--bench`) works unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 10, Duration::from_secs(1), |b| f(b));
        self
    }
}

/// A named group of benchmarks sharing sample configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Caps the total time spent sampling one benchmark; sampling stops
    /// early (with at least one sample) once the budget is exhausted.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.measurement_time, |b| f(b));
        self
    }

    /// Ends the group (prints nothing extra; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: an optional function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: parameter.to_string(),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(func) => write!(f, "{}/{}", func, self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    time_budget: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples, stopping
    /// early (after at least one sample) when the time budget runs out.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Short warm-up so lazily initialised state is off the clock.
        black_box(routine());
        self.samples.clear();
        let began = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if began.elapsed() >= self.time_budget {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    time_budget: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        time_budget,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<48} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
        bencher.samples.len()
    );
}

/// Collects benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main`, mirroring `criterion::criterion_main!`.  Command-line
/// arguments (e.g. the `--bench` cargo appends) are deliberately ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
